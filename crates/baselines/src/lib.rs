//! Unified spatial-aggregation interface over GeoBlocks and all §4.1
//! baselines, plus the exact ground truth used for error metrics.
//!
//! Every approach answers the same two query forms (§2): SELECT (a set of
//! aggregates over the points in a polygon) and COUNT. To keep the
//! comparison fair, as in the paper:
//!
//! * [`BinarySearchIndex`], [`BTreeIndex`], and the GeoBlocks adapters all
//!   use the *same* error-bounded cell covering of the query polygon,
//! * [`PhTreeIndex`] and [`ARTreeIndex`] only support rectangular windows,
//!   so they query the polygon's **interior rectangle** (their results
//!   differ — §4.1: "the PHTree's query results differ from the results of
//!   the other approaches"),
//! * [`GroundTruth`] computes the exact answer with point-in-polygon tests
//!   over the raw rows, defining the relative error
//!   `|result − truth| / truth` of Figures 14–16.

pub mod blocks;
pub mod onfly;
pub mod rect_index;
pub mod truth;

pub use blocks::{BlockIndex, BlockQcIndex};
pub use onfly::{BTreeIndex, BinarySearchIndex};
pub use rect_index::{ARTreeIndex, AggRecord, PhTreeIndex, Quantizer};
pub use truth::GroundTruth;

use gb_data::AggSpec;
use gb_geom::Polygon;
use geoblocks::AggResult;

/// A spatial aggregation approach under evaluation.
///
/// `select`/`count` take `&mut self` because the query-caching GeoBlock
/// adapts to the workload (statistics + cache rebuilds) while answering.
pub trait SpatialAggIndex {
    /// Short display name used in report tables ("Block", "BTree", …).
    fn name(&self) -> &'static str;

    /// SELECT: the requested aggregates over the polygon's points.
    fn select(&mut self, polygon: &Polygon, spec: &AggSpec) -> AggResult;

    /// COUNT: number of points in the polygon.
    fn count(&mut self, polygon: &Polygon) -> u64;

    /// Bytes of index structure *on top of* the base data (Figure 11b's
    /// relative-overhead numerator).
    fn index_bytes(&self) -> usize;
}

/// Relative error metric of §4.2: `|result − truth| / truth`.
///
/// Zero truth with a zero result is a perfect answer (error 0); zero truth
/// with a non-zero result is reported as infinite.
pub fn relative_error(result: u64, truth: u64) -> f64 {
    if truth == 0 {
        if result == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (result as f64 - truth as f64).abs() / truth as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(100, 100), 0.0);
        assert_eq!(relative_error(110, 100), 0.1);
        assert_eq!(relative_error(90, 100), 0.1);
        assert_eq!(relative_error(0, 0), 0.0);
        assert_eq!(relative_error(5, 0), f64::INFINITY);
    }
}
