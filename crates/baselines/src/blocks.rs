//! GeoBlocks adapters to the unified [`SpatialAggIndex`] interface.

use crate::SpatialAggIndex;
use gb_data::AggSpec;
use gb_geom::Polygon;
use geoblocks::{AggResult, GeoBlock, GeoBlockQC};

/// "Block": GeoBlocks without query caching.
pub struct BlockIndex {
    block: GeoBlock,
}

impl BlockIndex {
    pub fn new(block: GeoBlock) -> Self {
        BlockIndex { block }
    }

    pub fn block(&self) -> &GeoBlock {
        &self.block
    }
}

impl SpatialAggIndex for BlockIndex {
    fn name(&self) -> &'static str {
        "Block"
    }

    fn select(&mut self, polygon: &Polygon, spec: &AggSpec) -> AggResult {
        self.block.select(polygon, spec).0
    }

    fn count(&mut self, polygon: &Polygon) -> u64 {
        self.block.count(polygon).0
    }

    fn index_bytes(&self) -> usize {
        self.block.memory_bytes()
    }
}

/// "BlockQC": GeoBlocks with the AggregateTrie query cache.
pub struct BlockQcIndex {
    qc: GeoBlockQC,
}

impl BlockQcIndex {
    pub fn new(qc: GeoBlockQC) -> Self {
        BlockQcIndex { qc }
    }

    pub fn qc(&self) -> &GeoBlockQC {
        &self.qc
    }

    pub fn qc_mut(&mut self) -> &mut GeoBlockQC {
        &mut self.qc
    }
}

impl SpatialAggIndex for BlockQcIndex {
    fn name(&self) -> &'static str {
        "BlockQC"
    }

    fn select(&mut self, polygon: &Polygon, spec: &AggSpec) -> AggResult {
        self.qc.select(polygon, spec).result
    }

    fn count(&mut self, polygon: &Polygon) -> u64 {
        self.qc.count(polygon).result
    }

    fn index_bytes(&self) -> usize {
        self.qc.block().memory_bytes() + self.qc.trie().size_bytes()
    }
}
