//! End-to-end negative tests: build a miniature workspace on disk with
//! one deliberate violation per rule, run the full `gb_lint::run`
//! pipeline over it, and check every seed is caught — then that an
//! allow directive and a baseline each make the run clean again. This
//! exercises the same path as the CI gate (directory walk, relative
//! paths, config scoping), not just the per-file rule functions.

use gb_lint::{Baseline, Config};
use std::fs;
use std::path::PathBuf;

struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str) -> MiniWorkspace {
        let root = std::env::temp_dir()
            .join("gb_lint_seeded")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        MiniWorkspace { root }
    }

    fn file(&self, rel: &str, contents: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdirs");
        fs::write(path, contents).expect("write");
        self
    }

    fn run(&self, baseline: Option<&Baseline>) -> gb_lint::Report {
        gb_lint::run(&self.root, &Config::workspace(), baseline).expect("lint runs")
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn rules_fired(report: &gb_lint::Report) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.fresh.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

/// One seeded violation per rule, each in a file the config scopes the
/// rule to.
fn seed_all(ws: &MiniWorkspace) {
    ws.file(
        "crates/store/src/lib.rs",
        "pub fn decode(buf: &[u8]) -> u32 {\n    let n = buf.len() as u32;\n    head(buf).unwrap();\n    n\n}\n",
    );
    ws.file(
        "crates/core/src/block.rs",
        "pub fn total(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>()\n}\n",
    );
    ws.file(
        "crates/core/src/worker.rs",
        "pub fn go() {\n    std::thread::spawn(|| {});\n}\n",
    );
    ws.file(
        "crates/serve/src/metrics.rs",
        "pub fn bump(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
    );
    ws.file(
        "crates/core/src/engine.rs",
        concat!(
            "impl Engine {\n",
            "    fn backwards(&self) {\n",
            "        let t = self.state.write();\n",
            "        let g = self.rebuild_guard.lock();\n",
            "        drop((t, g));\n",
            "    }\n",
            "}\n",
        ),
    );
}

#[test]
fn every_rule_catches_its_seeded_violation() {
    let ws = MiniWorkspace::new("all");
    seed_all(&ws);
    let report = ws.run(None);
    assert_eq!(
        rules_fired(&report),
        vec![
            "atomic-ordering",
            "float-fold",
            "lock-order",
            "lossy-cast",
            "panic-path",
            "rogue-spawn"
        ],
        "findings: {:#?}",
        report.fresh
    );
    // The store file seeds both a cast and an unwrap; everything else
    // seeds exactly one finding.
    assert_eq!(report.fresh.len(), 6, "{:#?}", report.fresh);
}

#[test]
fn allow_directives_silence_each_seed() {
    let ws = MiniWorkspace::new("allowed");
    ws.file(
        "crates/store/src/lib.rs",
        "pub fn decode(buf: &[u8]) -> u32 {\n    \
         let n = buf.len() as u32; // gb-lint: allow(lossy-cast) -- test\n    \
         head(buf).unwrap(); // gb-lint: allow(panic-path) -- test\n    n\n}\n",
    );
    ws.file(
        "crates/core/src/worker.rs",
        "pub fn go() {\n    // gb-lint: allow(rogue-spawn) -- test\n    \
         std::thread::spawn(|| {});\n}\n",
    );
    ws.file(
        "crates/serve/src/metrics.rs",
        "pub fn bump(c: &AtomicU64) {\n    \
         // gb-lint: allow(atomic-ordering) -- test\n    \
         c.fetch_add(1, Ordering::Relaxed);\n}\n",
    );
    let report = ws.run(None);
    assert!(report.fresh.is_empty(), "{:#?}", report.fresh);
}

#[test]
fn violations_inside_test_code_are_exempt_except_spawns() {
    let ws = MiniWorkspace::new("testcode");
    ws.file(
        "crates/store/src/lib.rs",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        decode(b\"x\").unwrap();\n    }\n}\n",
    );
    ws.file(
        "crates/core/tests/spawny.rs",
        "#[test]\nfn t() {\n    std::thread::spawn(|| {}).join().unwrap();\n}\n",
    );
    let report = ws.run(None);
    assert_eq!(
        rules_fired(&report),
        vec!["rogue-spawn"],
        "{:#?}",
        report.fresh
    );
    assert_eq!(report.fresh.len(), 1);
}

#[test]
fn baseline_absorbs_known_findings_and_flags_new_ones() {
    let ws = MiniWorkspace::new("baseline");
    seed_all(&ws);
    let first = ws.run(None);
    assert_eq!(first.fresh.len(), 6);

    // Baseline everything: the gate goes green.
    let baseline = Baseline::parse(&Baseline::render(&first.fresh)).expect("roundtrip");
    let absorbed = ws.run(Some(&baseline));
    assert!(absorbed.fresh.is_empty(), "{:#?}", absorbed.fresh);
    assert_eq!(absorbed.grandfathered.len(), 6);

    // A brand-new violation is still fresh against that baseline.
    ws.file(
        "crates/core/src/trie.rs",
        "pub fn pick(xs: &[u8]) -> u8 {\n    xs[0]\n}\n",
    );
    let with_new = ws.run(Some(&baseline));
    assert_eq!(with_new.fresh.len(), 1, "{:#?}", with_new.fresh);
    assert_eq!(with_new.fresh[0].rule, "panic-path");
    assert_eq!(with_new.grandfathered.len(), 6);

    // Editing a baselined line resurrects its finding.
    ws.file(
        "crates/core/src/block.rs",
        "pub fn total(xs: &[f64]) -> f64 {\n    2.0 * xs.iter().sum::<f64>()\n}\n",
    );
    ws.file("crates/core/src/trie.rs", "pub fn pick() {}\n");
    let edited = ws.run(Some(&baseline));
    assert_eq!(edited.fresh.len(), 1, "{:#?}", edited.fresh);
    assert_eq!(edited.fresh[0].rule, "float-fold");
}
