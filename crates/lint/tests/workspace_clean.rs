//! The self-test: the workspace this linter ships in must itself lint
//! clean (modulo the checked-in baseline). This is the same check CI
//! runs via `cargo run -p gb_lint -- --baseline`, expressed as a plain
//! test so `cargo test` alone catches a fresh finding.

use gb_lint::{default_baseline_path, Baseline, Config};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint → crates → workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

#[test]
fn workspace_has_no_fresh_findings() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "did not find the workspace root at {}",
        root.display()
    );
    let baseline = Baseline::load(&default_baseline_path(&root)).expect("baseline parses");
    let report = gb_lint::run(&root, &Config::workspace(), Some(&baseline)).expect("lint runs");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .fresh
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.snippet.trim()))
        .collect();
    assert!(
        report.fresh.is_empty(),
        "fresh lint findings — fix them or (for report-only code) baseline them:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn baseline_entries_still_match_real_findings() {
    // A baseline entry whose line was edited or removed no longer
    // matches anything; stale entries should be pruned, not accreted.
    let root = workspace_root();
    let baseline = Baseline::load(&default_baseline_path(&root)).expect("baseline parses");
    let report = gb_lint::run(&root, &Config::workspace(), Some(&baseline)).expect("lint runs");
    assert_eq!(
        report.grandfathered.len(),
        baseline.len(),
        "stale baseline entries: regenerate with `cargo run -p gb_lint -- --write-baseline`"
    );
}
