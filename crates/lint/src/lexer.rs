//! A small Rust lexer for lint purposes.
//!
//! The rule engine must never fire inside a string literal, a comment, or
//! a doc example — `"call .unwrap() here"` in an error message is not a
//! panic site. This module scans a source file once and produces a
//! *masked* view: byte-for-line identical structure where every character
//! inside a string/char literal or comment is replaced by a space, so the
//! rules can do plain substring matching on what is genuinely code.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! depth), byte and byte-raw strings, char literals (including escapes),
//! and the char-vs-lifetime ambiguity (`'a'` is a literal, `'a` in
//! `&'a str` is not).
//!
//! On top of the mask the lexer tracks two line-level properties:
//!
//! * **test regions** — lines inside a `#[cfg(test)]` or `#[test]` item
//!   body (plus whole files under a `tests/` directory). Most rules give
//!   test code a pass; rules that do not (e.g. `rogue-spawn`) say so.
//! * **suppressions** — `// gb-lint: allow(rule-a, rule-b)` comments. A
//!   directive suppresses matching findings on its own line and on the
//!   line directly below it (so a standalone comment line can shield the
//!   statement it documents).

/// One scanned line of a source file.
#[derive(Debug)]
pub struct Line {
    /// The line with string/char/comment interiors blanked to spaces.
    pub masked: String,
    /// The original source line (for reports and baseline fingerprints).
    pub source: String,
    /// True when the line sits inside a test region.
    pub test: bool,
    /// Rule names allowed by a `gb-lint: allow(…)` directive on this line.
    pub allows: Vec<String>,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scan `src`. `whole_file_test` marks every line as test code
    /// (integration-test files under `tests/`).
    pub fn scan(path: impl Into<String>, src: &str, whole_file_test: bool) -> SourceFile {
        let chars: Vec<char> = src.chars().collect();
        let n = chars.len();
        let mut masked = String::with_capacity(src.len());
        // Comment text per line, for allow-directive parsing.
        let mut comments: Vec<String> = vec![String::new()];
        let mut line = 0usize;

        // Push a source character that is *inside* a masked region.
        // Newlines survive so line structure is preserved.
        macro_rules! mask_push {
            ($c:expr) => {{
                let c = $c;
                if c == '\n' {
                    masked.push('\n');
                    line += 1;
                    comments.push(String::new());
                } else {
                    masked.push(' ');
                }
            }};
        }

        let mut i = 0usize;
        while i < n {
            let c = chars[i];
            match c {
                '/' if i + 1 < n && chars[i + 1] == '/' => {
                    // Line comment: mask it, but remember its text.
                    while i < n && chars[i] != '\n' {
                        comments[line].push(chars[i]);
                        mask_push!(chars[i]);
                        i += 1;
                    }
                }
                '/' if i + 1 < n && chars[i + 1] == '*' => {
                    // Block comment, nesting-aware.
                    let mut depth = 0usize;
                    while i < n {
                        if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                            depth += 1;
                            comments[line].push_str("/*");
                            mask_push!('/');
                            mask_push!('*');
                            i += 2;
                        } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                            depth -= 1;
                            comments[line].push_str("*/");
                            mask_push!('*');
                            mask_push!('/');
                            i += 2;
                            if depth == 0 {
                                break;
                            }
                        } else {
                            if chars[i] != '\n' {
                                comments[line].push(chars[i]);
                            }
                            mask_push!(chars[i]);
                            i += 1;
                        }
                    }
                }
                '"' => i = Self::mask_string(&chars, i, &mut |c| mask_push!(c)),
                'r' | 'b' if Self::raw_or_byte_start(&chars, i) => {
                    // br"", b"", r"", r#""#, br#""# — consume prefix then
                    // the (raw or plain) string body.
                    let start = i;
                    let mut j = i;
                    if chars[j] == 'b' {
                        j += 1;
                    }
                    let raw = j < n && chars[j] == 'r';
                    if raw {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    // Prefix chars are masked too (they are literal-ish).
                    for &pc in &chars[start..j] {
                        mask_push!(pc);
                    }
                    i = j;
                    if raw {
                        // Raw string: no escapes; ends at `"` + `hashes` #s.
                        mask_push!('"');
                        i += 1;
                        while i < n {
                            if chars[i] == '"' {
                                let mut k = 0;
                                while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    for _ in 0..=hashes {
                                        mask_push!(chars[i]);
                                        i += 1;
                                    }
                                    break;
                                }
                            }
                            mask_push!(chars[i]);
                            i += 1;
                        }
                    } else {
                        i = Self::mask_string(&chars, i, &mut |c| mask_push!(c));
                    }
                }
                '\'' => {
                    // Char literal vs lifetime. A literal is `'` + escape
                    // or single char + `'`; everything else is a lifetime.
                    let is_char_lit = if i + 1 < n && chars[i + 1] == '\\' {
                        true
                    } else {
                        i + 2 < n && chars[i + 2] == '\''
                    };
                    if is_char_lit {
                        mask_push!('\'');
                        i += 1;
                        if i < n && chars[i] == '\\' {
                            mask_push!('\\');
                            i += 1;
                            // Escape payload up to the closing quote.
                            while i < n && chars[i] != '\'' {
                                mask_push!(chars[i]);
                                i += 1;
                            }
                        } else if i < n {
                            mask_push!(chars[i]);
                            i += 1;
                        }
                        if i < n && chars[i] == '\'' {
                            mask_push!('\'');
                            i += 1;
                        }
                    } else {
                        // Lifetime: keep as code.
                        masked.push('\'');
                        i += 1;
                    }
                }
                '\n' => {
                    masked.push('\n');
                    line += 1;
                    comments.push(String::new());
                    i += 1;
                }
                _ => {
                    masked.push(c);
                    i += 1;
                }
            }
        }

        let src_lines: Vec<&str> = src.split('\n').collect();
        let masked_lines: Vec<&str> = masked.split('\n').collect();
        let test_lines = Self::test_regions(&masked_lines, whole_file_test);

        let mut lines = Vec::with_capacity(masked_lines.len());
        for (idx, m) in masked_lines.iter().enumerate() {
            lines.push(Line {
                masked: (*m).to_string(),
                source: src_lines.get(idx).copied().unwrap_or("").to_string(),
                test: test_lines.get(idx).copied().unwrap_or(whole_file_test),
                allows: Self::parse_allows(comments.get(idx).map(String::as_str).unwrap_or("")),
            });
        }
        SourceFile {
            path: path.into(),
            lines,
        }
    }

    /// True when `chars[i]` starts a raw/byte string prefix (and is not
    /// just an identifier that happens to begin with `r` or `b`).
    fn raw_or_byte_start(chars: &[char], i: usize) -> bool {
        if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
            return false; // mid-identifier
        }
        let n = chars.len();
        let mut j = i;
        if chars[j] == 'b' {
            j += 1;
            if j < n && chars[j] == '\'' {
                return false; // byte char literal: let the '\'' arm handle it
            }
        }
        if j < n && chars[j] == 'r' {
            j += 1;
            while j < n && chars[j] == '#' {
                j += 1;
            }
        }
        j < n && chars[j] == '"' && j > i
    }

    /// Mask a plain (escaped) string starting at the opening quote;
    /// returns the index just past the closing quote.
    fn mask_string(chars: &[char], mut i: usize, push: &mut impl FnMut(char)) -> usize {
        let n = chars.len();
        push('"');
        i += 1;
        while i < n {
            match chars[i] {
                '\\' if i + 1 < n => {
                    push('\\');
                    push(chars[i + 1]);
                    i += 2;
                }
                '"' => {
                    push('"');
                    i += 1;
                    break;
                }
                c => {
                    push(c);
                    i += 1;
                }
            }
        }
        i
    }

    /// Mark lines inside `#[cfg(test)]` / `#[test]` item bodies. The
    /// attribute arms the *next* `{`; the region runs until its matching
    /// `}`. A `;` before any `{` (e.g. `#[cfg(test)] use x;`) disarms.
    fn test_regions(masked_lines: &[&str], whole_file: bool) -> Vec<bool> {
        let mut out = vec![whole_file; masked_lines.len()];
        if whole_file {
            return out;
        }
        let mut depth: i64 = 0;
        let mut pending = false;
        let mut regions: Vec<i64> = Vec::new(); // depth at which each region closes
        for (idx, line) in masked_lines.iter().enumerate() {
            let bytes = line.as_bytes();
            let mut j = 0usize;
            if !regions.is_empty() {
                out[idx] = true;
            }
            while j < bytes.len() {
                let rest = &bytes[j..];
                if rest.starts_with(b"#[cfg(test)]") || rest.starts_with(b"#[test]") {
                    pending = true;
                    j += if rest.starts_with(b"#[test]") { 7 } else { 12 };
                    continue;
                }
                match bytes[j] {
                    b'{' => {
                        if pending {
                            regions.push(depth);
                            pending = false;
                            out[idx] = true;
                        }
                        depth += 1;
                    }
                    b'}' => {
                        depth -= 1;
                        if regions.last().is_some_and(|&d| depth <= d) {
                            regions.pop();
                        }
                    }
                    b';' if pending => pending = false,
                    _ => {}
                }
                j += 1;
            }
            if !regions.is_empty() {
                out[idx] = true;
            }
        }
        out
    }

    /// Parse `gb-lint: allow(a, b)` out of a line's comment text.
    fn parse_allows(comment: &str) -> Vec<String> {
        let Some(at) = comment.find("gb-lint:") else {
            return Vec::new();
        };
        let rest = &comment[at + "gb-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            return Vec::new();
        };
        let body = &rest[open + "allow(".len()..];
        let Some(close) = body.find(')') else {
            return Vec::new();
        };
        body[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    }

    /// Whether findings of `rule` on 0-based line `idx` are suppressed by
    /// an allow directive on that line or the line above.
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        let hit = |i: usize| {
            self.lines
                .get(i)
                .is_some_and(|l| l.allows.iter().any(|a| a == rule || a == "all"))
        };
        hit(idx) || (idx > 0 && hit(idx - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        SourceFile::scan("t.rs", src, false)
            .lines
            .iter()
            .map(|l| l.masked.clone())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let m = masked("let x = \"a.unwrap()\"; // .unwrap()\nx.unwrap();");
        assert!(!m.lines().next().unwrap().contains("unwrap"));
        assert!(m.lines().nth(1).unwrap().contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let m = masked("let s = r#\"panic! \"quoted\" panic!\"#; panic!();");
        assert_eq!(m.matches("panic!").count(), 1);
        let m = masked("let s = br##\"thread::spawn\"##; ok();");
        assert!(!m.contains("spawn"));
        assert!(m.contains("ok()"));
    }

    #[test]
    fn nested_block_comments() {
        let m = masked("/* outer /* inner .unwrap() */ still */ x.unwrap()");
        assert_eq!(m.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // A char literal containing a quote-relevant char must be masked;
        // lifetimes must survive as code.
        let m = masked("let c = '\"'; let s: &'static str = x; y.unwrap()");
        assert!(m.contains("&'static str"));
        assert_eq!(m.matches(".unwrap()").count(), 1);
        let m = masked("let c = '\\''; z.unwrap()");
        assert_eq!(m.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn test_region_tracking() {
        let src = "fn a() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn b() { y.unwrap(); }\n\
                   }\n\
                   fn c() { z.unwrap(); }";
        let f = SourceFile::scan("t.rs", src, false);
        assert!(!f.lines[0].test);
        assert!(f.lines[3].test);
        assert!(!f.lines[5].test, "region must close after the mod");
    }

    #[test]
    fn cfg_test_on_use_item_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() { z(); }";
        let f = SourceFile::scan("t.rs", src, false);
        assert!(!f.lines[2].test);
    }

    #[test]
    fn allow_directives_cover_same_and_next_line() {
        let src = "a(); // gb-lint: allow(panic-path, float-fold)\nb();\nc();";
        let f = SourceFile::scan("t.rs", src, false);
        assert!(f.allowed(0, "panic-path"));
        assert!(f.allowed(0, "float-fold"));
        assert!(f.allowed(1, "panic-path"), "next line is covered");
        assert!(!f.allowed(2, "panic-path"));
        assert!(!f.allowed(0, "rogue-spawn"));
    }

    #[test]
    fn whole_file_test_flag() {
        let f = SourceFile::scan("tests/x.rs", "fn a() { x.unwrap(); }", true);
        assert!(f.lines[0].test);
    }
}
