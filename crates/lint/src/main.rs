//! CLI for the workspace invariant checker.
//!
//! ```text
//! gb_lint [--root DIR] [--baseline[=PATH]] [--no-baseline]
//!         [--write-baseline] [--list-rules] [--quiet]
//! ```
//!
//! Exit codes: 0 — clean (modulo baseline), 1 — fresh findings,
//! 2 — usage or I/O error. CI runs `cargo run -p gb_lint -- --baseline`
//! as a required gate; the same invocation is the local pre-push check.

use gb_lint::{default_baseline_path, Baseline, Config, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    use_baseline: bool,
    write_baseline: bool,
    list_rules: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: gb_lint [--root DIR] [--baseline[=PATH]] [--no-baseline]\n\
     \x20              [--write-baseline] [--list-rules] [--quiet]\n\
     \n\
     Checks the workspace source against the invariant rules (panic-path,\n\
     float-fold, rogue-spawn, lock-order, lossy-cast). Exit 0 when clean\n\
     (after baseline subtraction), 1 on any fresh finding, 2 on usage/IO\n\
     errors. Suppress a single line with `// gb-lint: allow(rule) -- why`."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: std::env::current_dir().map_err(|e| e.to_string())?,
        baseline_path: None,
        use_baseline: true,
        write_baseline: false,
        list_rules: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = PathBuf::from(v);
            }
            "--baseline" => args.use_baseline = true,
            "--no-baseline" => args.use_baseline = false,
            "--write-baseline" => args.write_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => {
                if let Some(p) = other.strip_prefix("--baseline=") {
                    args.baseline_path = Some(PathBuf::from(p));
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("gb_lint: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in RULES {
            println!("{:<12} {}", r.name, r.description);
        }
        return ExitCode::SUCCESS;
    }

    if !args.root.join("Cargo.toml").exists() {
        eprintln!(
            "gb_lint: {} does not look like the workspace root (no Cargo.toml); use --root",
            args.root.display()
        );
        return ExitCode::from(2);
    }

    let baseline_path = args
        .baseline_path
        .clone()
        .unwrap_or_else(|| default_baseline_path(&args.root));
    let cfg = Config::workspace();

    if args.write_baseline {
        let report = match gb_lint::run(&args.root, &cfg, None) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("gb_lint: {e}");
                return ExitCode::from(2);
            }
        };
        let text = Baseline::render(&report.fresh);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("gb_lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "gb_lint: wrote {} entries to {}",
            report.fresh.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if args.use_baseline {
        match Baseline::load(&baseline_path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("gb_lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let report = match gb_lint::run(&args.root, &cfg, baseline.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gb_lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.fresh {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        if !args.quiet {
            println!("    {}", f.snippet);
        }
    }
    if !args.quiet {
        println!(
            "gb_lint: {} files scanned, {} fresh finding(s), {} grandfathered",
            report.files_scanned,
            report.fresh.len(),
            report.grandfathered.len()
        );
    }
    if report.fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
