//! The rule engine: each rule walks a [`SourceFile`]'s masked lines and
//! emits [`Finding`]s. Rules are lexical by design — no type information,
//! no macro expansion — which keeps the checker dependency-free and fast,
//! at the price of needing the narrow, workspace-specific scoping in
//! [`Config`] to stay precise. Every rule honors `gb-lint: allow(rule)`
//! suppressions; whether test regions are exempt is per-rule (documented
//! on each).

use crate::config::Config;
use crate::lexer::SourceFile;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `panic-path`).
    pub rule: &'static str,
    /// File path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// The trimmed original source line (report display + baseline key).
    pub snippet: String,
}

/// Static description of a rule, for `--list-rules` and the docs.
pub struct RuleInfo {
    pub name: &'static str,
    pub description: &'static str,
    pub check: fn(&SourceFile, &Config) -> Vec<Finding>,
}

/// Every rule the checker knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "panic-path",
        description: "no unwrap/expect/panic!/unreachable!/indexing-by-literal in \
                      decode/serve modules (they must return typed errors); test code exempt",
        check: panic_path,
    },
    RuleInfo {
        name: "float-fold",
        description: "no ad-hoc f64 accumulation (.sum::<f64>(), .fold(0.0, ..)) outside \
                      the canonical kernels in pyramid.rs/aggregate.rs; test code exempt",
        check: float_fold,
    },
    RuleInfo {
        name: "rogue-spawn",
        description: "thread::spawn only inside gb_common::pool — all concurrency goes \
                      through the pool (applies to test code too)",
        check: rogue_spawn,
    },
    RuleInfo {
        name: "lock-order",
        description: "nested engine lock acquisitions must follow the declared order \
                      (rebuild_guard < shards < trie); test code exempt (covered by the \
                      runtime checker)",
        check: lock_order,
    },
    RuleInfo {
        name: "lossy-cast",
        description: "no bare narrowing `as` casts (as u8/u16/u32/i8/i16/i32) in length/\
                      offset decoding files — use try_from or the checked writer helpers",
        check: lossy_cast,
    },
    RuleInfo {
        name: "atomic-ordering",
        description: "no bare `Ordering::Relaxed` outside the stats-counter module — \
                      route statistics through gb_common::stats::Counter, spell out \
                      Acquire/Release/SeqCst for synchronization, or justify with an \
                      allow comment; test code exempt",
        check: atomic_ordering,
    },
];

/// True if `c` can be part of an identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of every non-overlapping occurrence of `pat` in `hay`.
fn occurrences<'a>(hay: &'a str, pat: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0usize;
    std::iter::from_fn(move || {
        let at = hay[from..].find(pat)? + from;
        from = at + pat.len();
        Some(at)
    })
}

fn finding(
    rule: &'static str,
    file: &SourceFile,
    idx: usize,
    message: impl Into<String>,
) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line: idx + 1,
        message: message.into(),
        snippet: file.lines[idx].source.trim().to_string(),
    }
}

/// `panic-path`: decode/serve modules must never panic. Flags
/// `.unwrap()`, `.unwrap_err()`, `.expect(`, `.expect_err(`, `panic!`,
/// `unreachable!`, `todo!`, `unimplemented!`, and slice indexing by an
/// integer literal (`buf[0]`). Test regions are exempt.
fn panic_path(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    const RULE: &str = "panic-path";
    if !cfg.is_panic_free(&file.path) {
        return Vec::new();
    }
    const PATTERNS: &[(&str, &str)] = &[
        (".unwrap()", "`.unwrap()` can panic"),
        (".unwrap_err()", "`.unwrap_err()` can panic"),
        (".expect(", "`.expect(..)` can panic"),
        (".expect_err(", "`.expect_err(..)` can panic"),
        ("panic!", "`panic!` in a decode/serve path"),
        ("unreachable!", "`unreachable!` in a decode/serve path"),
        ("todo!", "`todo!` in a decode/serve path"),
        ("unimplemented!", "`unimplemented!` in a decode/serve path"),
    ];
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.test || file.allowed(idx, RULE) {
            continue;
        }
        let m = line.masked.as_str();
        for &(pat, why) in PATTERNS {
            for at in occurrences(m, pat) {
                // `.expect(` must not also fire via a longer name ending
                // in the same suffix (`.grand_expect(` is not std); guard
                // anyway so macro patterns stay exact words.
                if pat.starts_with('.') {
                    // method patterns: preceded by an expression, always fine
                } else {
                    // macro patterns: require a word boundary on the left
                    let before = m[..at].chars().next_back();
                    if before.is_some_and(is_ident) {
                        continue;
                    }
                }
                out.push(finding(
                    RULE,
                    file,
                    idx,
                    format!("{why}; return a typed error instead"),
                ));
            }
        }
        // Slice indexing by integer literal: `expr[123]` where the `[` is
        // preceded by an identifier, `]`, or `)`.
        let bytes = m.as_bytes();
        for at in occurrences(m, "[") {
            let prev = m[..at].chars().next_back();
            if !prev.is_some_and(|c| is_ident(c) || c == ']' || c == ')') {
                continue;
            }
            let mut j = at + 1;
            let mut digits = 0usize;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                digits += 1;
                j += 1;
            }
            if digits > 0 && j < bytes.len() && bytes[j] == b']' {
                out.push(finding(
                    RULE,
                    file,
                    idx,
                    "indexing by integer literal can panic; use `get(..)` or a checked read",
                ));
            }
        }
    }
    out
}

/// `float-fold`: ad-hoc f64 reductions drift from the canonical in-order
/// fold and break parallel == serial bit-identity. Only the blessed
/// kernel files may accumulate floats. Test regions are exempt.
fn float_fold(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    const RULE: &str = "float-fold";
    if cfg.is_float_blessed(&file.path) {
        return Vec::new();
    }
    const PATTERNS: &[&str] = &["sum::<f64>", ".fold(0.0", ".fold(0f64", ".product::<f64>"];
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.test || file.allowed(idx, RULE) {
            continue;
        }
        for pat in PATTERNS {
            if line.masked.contains(pat) {
                out.push(finding(
                    RULE,
                    file,
                    idx,
                    format!(
                        "ad-hoc f64 accumulation (`{pat}`): route through the canonical fold \
                         kernels in pyramid.rs/aggregate.rs to preserve bit-identity"
                    ),
                ));
            }
        }
    }
    out
}

/// `rogue-spawn`: `thread::spawn` outside `gb_common::pool`. Applies to
/// test code too — tests that genuinely need a raw panic-isolated thread
/// use `gb_common::pool::spawn_join` or carry an explicit allow.
fn rogue_spawn(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    const RULE: &str = "rogue-spawn";
    if cfg.is_spawn_blessed(&file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if file.allowed(idx, RULE) {
            continue;
        }
        if line.masked.contains("thread::spawn") {
            out.push(finding(
                RULE,
                file,
                idx,
                "raw `thread::spawn`: all concurrency goes through `gb_common::pool` \
                 (`Pool::run`/`par_map`/`par_chunks`, or `pool::spawn_join` for \
                 panic-isolated one-offs)",
            ));
        }
    }
    out
}

/// `lock-order`: lexical check that declared engine locks are acquired in
/// rank order. An acquisition bound with `let` is treated as *held* until
/// its enclosing block closes; acquiring an equal- or lower-ranked lock
/// while one is held is a violation. Test regions are exempt (the runtime
/// checker in `gb_common::sync` covers them).
fn lock_order(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    const RULE: &str = "lock-order";
    const PATTERNS: &[&str] = &[".lock()", ".read()", ".write()"];
    let mut out = Vec::new();

    // Pre-pass: every acquisition site, with a *held* flag. A guard is
    // held (lives to end of enclosing block) when the acquisition is the
    // terminal call of a `let` binding; anything else — a chained call
    // (`.read().root_cell()`), a deref-assign (`*trie.write() = ..`) — is
    // a temporary dropped at the end of its statement.
    let mut sites_by_line: Vec<Vec<(usize, String, bool)>> = Vec::new();
    let mut let_active = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let m = line.masked.as_str();
        let t = m.trim_start();
        if t.starts_with("let ") || m.contains(" let ") {
            let_active = true;
        }
        let mut sites: Vec<(usize, String, bool)> = Vec::new();
        for pat in PATTERNS {
            for at in occurrences(m, pat) {
                let Some(name) = receiver_name(m, at) else {
                    continue;
                };
                if cfg.lock_rank(&name).is_none() {
                    continue;
                }
                let after = m[at + pat.len()..].trim_start();
                let terminal = if after.is_empty() {
                    // Statement continues on the next line: chained call?
                    !file
                        .lines
                        .get(idx + 1)
                        .map(|l| l.masked.trim_start().starts_with('.'))
                        .unwrap_or(false)
                } else {
                    after.starts_with(';')
                };
                sites.push((at, name, let_active && terminal));
            }
        }
        sites.sort_by_key(|&(at, _, _)| at);
        sites_by_line.push(sites);
        if m.contains(';') {
            let_active = false;
        }
    }

    // Main pass: walk characters for brace depth, releasing held guards
    // when their block closes, checking rank order at each acquisition.
    let mut held: Vec<(u8, String, i64)> = Vec::new();
    let mut depth: i64 = 0;
    for (idx, line) in file.lines.iter().enumerate() {
        let m = line.masked.as_str();
        let mut site_iter = sites_by_line[idx].iter().peekable();
        for (col, c) in m.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    held.retain(|&(_, _, d)| d <= depth);
                }
                _ => {}
            }
            while site_iter.peek().is_some_and(|&&(at, _, _)| at <= col) {
                let (_, name, is_held) = site_iter.next().expect("peeked");
                let rank = cfg.lock_rank(name).expect("filtered above");
                if !line.test && !file.allowed(idx, RULE) {
                    for (held_rank, held_name, _) in &held {
                        if *held_rank >= rank {
                            out.push(finding(
                                RULE,
                                file,
                                idx,
                                format!(
                                    "lock `{name}` (rank {rank}) acquired while holding \
                                     `{held_name}` (rank {held_rank}); declared order is \
                                     rebuild_guard/publish_guard < shards/memo/hot_queries < state \
                                     < queue < entries/buckets"
                                ),
                            ));
                        }
                    }
                }
                if *is_held {
                    held.push((rank, name.clone(), depth));
                }
            }
        }
    }
    out
}

/// Walk left from the `.` of `.lock()` at `at`, skipping balanced
/// `[..]`/`(..)` groups, and return the receiver's final identifier
/// (`self.shards[i].lock()` → `shards`).
fn receiver_name(masked: &str, at: usize) -> Option<String> {
    let chars: Vec<char> = masked[..at].chars().collect();
    let mut i = chars.len();
    // Skip one balanced bracket/paren group if present (index or call).
    loop {
        while i > 0 && chars[i - 1] == ' ' {
            i -= 1;
        }
        if i > 0 && (chars[i - 1] == ']' || chars[i - 1] == ')') {
            let open = if chars[i - 1] == ']' { '[' } else { '(' };
            let close = chars[i - 1];
            let mut depth = 0i32;
            while i > 0 {
                i -= 1;
                if chars[i] == close {
                    depth += 1;
                } else if chars[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        } else {
            break;
        }
    }
    let end = i;
    while i > 0 && is_ident(chars[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(chars[i..end].iter().collect())
}

/// `lossy-cast`: narrowing `as` casts silently truncate; length and
/// offset decoding must use `try_from` (or the checked writer helpers).
/// Test regions are exempt.
fn lossy_cast(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    const RULE: &str = "lossy-cast";
    if !cfg.is_cast_checked(&file.path) {
        return Vec::new();
    }
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.test || file.allowed(idx, RULE) {
            continue;
        }
        let m = line.masked.as_str();
        for at in occurrences(m, " as ") {
            let rest = &m[at + 4..];
            let ty: String = rest.chars().take_while(|&c| is_ident(c)).collect();
            let after = rest.chars().nth(ty.len());
            let word_ends = after.is_none_or(|c| !is_ident(c));
            if word_ends && NARROW.contains(&ty.as_str()) {
                out.push(finding(
                    RULE,
                    file,
                    idx,
                    format!(
                        "bare narrowing cast `as {ty}` can silently truncate; use \
                         `{ty}::try_from(..)` or a checked helper"
                    ),
                ));
            }
        }
    }
    out
}

/// `atomic-ordering`: `Ordering::Relaxed` provides no synchronization,
/// so every use is either a statistics counter (which belongs in
/// `gb_common::stats::Counter`, the one blessed file) or a subtle
/// correctness claim that must be argued in an allow comment where
/// reviewers can see it. Matches the bare word `Relaxed` too, so a
/// `use Ordering::Relaxed` import offers no cover. Test regions are
/// exempt.
fn atomic_ordering(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    const RULE: &str = "atomic-ordering";
    if cfg.is_relaxed_blessed(&file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.test || file.allowed(idx, RULE) {
            continue;
        }
        let m = line.masked.as_str();
        for at in occurrences(m, "Relaxed") {
            let before = m[..at].chars().next_back();
            let after = m[at + "Relaxed".len()..].chars().next();
            if before.is_some_and(is_ident) || after.is_some_and(is_ident) {
                continue; // part of a longer identifier
            }
            out.push(finding(
                RULE,
                file,
                idx,
                "`Ordering::Relaxed` outside the blessed stats module: use \
                 `gb_common::stats::Counter` for event tallies, an explicit \
                 Acquire/Release/SeqCst for synchronization, or add \
                 `gb-lint: allow(atomic-ordering) -- <why relaxed is correct>`",
            ));
        }
    }
    out
}

/// Run every rule over one file.
pub fn check_file(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in RULES {
        out.extend((rule.check)(file, cfg));
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> SourceFile {
        SourceFile::scan(path, src, path.contains("/tests/"))
    }

    fn rules_on(path: &str, src: &str) -> Vec<Finding> {
        check_file(&scan(path, src), &Config::workspace())
    }

    // ---- panic-path ----

    #[test]
    fn panic_path_fires_in_decode_modules() {
        let f = rules_on(
            "crates/store/src/lib.rs",
            "fn d() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); buf[0]; }",
        );
        let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["panic-path"; 4], "{f:?}");
    }

    #[test]
    fn panic_path_ignores_other_modules_and_tests() {
        assert!(rules_on("crates/core/src/block.rs", "fn d() { x.unwrap(); }").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(rules_on("crates/store/src/lib.rs", src).is_empty());
    }

    #[test]
    fn panic_path_does_not_flag_unwrap_or_else() {
        let src = "fn d() { x.unwrap_or_else(e); y.unwrap_or(3); z.unwrap_or_default(); }";
        assert!(rules_on("crates/store/src/lib.rs", src).is_empty());
    }

    #[test]
    fn panic_path_literal_index_only() {
        // Non-literal indices, array types, and attributes must not fire.
        let src = "fn d(i: usize) { a[i]; let t: [u8; 4] = x; }\n#[derive(Debug)]\nstruct S;";
        assert!(rules_on("crates/store/src/lib.rs", src).is_empty());
        let f = rules_on("crates/store/src/lib.rs", "fn d() { a[17]; }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("integer literal"));
    }

    #[test]
    fn panic_path_allow_comment_suppresses() {
        let src = "fn d() {\n // gb-lint: allow(panic-path) -- precondition\n x.unwrap();\n}";
        assert!(rules_on("crates/store/src/lib.rs", src).is_empty());
    }

    // ---- float-fold ----

    #[test]
    fn float_fold_fires_outside_kernels() {
        let f = rules_on(
            "crates/core/src/block.rs",
            "fn m(v: &[f64]) -> f64 { v.iter().sum::<f64>() }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-fold");
        let f = rules_on(
            "crates/data/src/x.rs",
            "let t = xs.iter().fold(0.0, |a, b| a + b);",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn float_fold_blessed_files_and_tests_pass() {
        let src = "fn k(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(rules_on("crates/core/src/pyramid.rs", src).is_empty());
        assert!(rules_on("crates/core/src/aggregate.rs", src).is_empty());
        assert!(rules_on("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn float_fold_integer_folds_are_fine() {
        let src = "let n = xs.iter().sum::<u64>(); let m = ys.iter().fold(0u64, |a, b| a + b);";
        assert!(rules_on("crates/core/src/block.rs", src).is_empty());
    }

    // ---- rogue-spawn ----

    #[test]
    fn rogue_spawn_fires_everywhere_even_tests() {
        let src = "fn go() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_on("crates/core/src/engine.rs", src).len(), 1);
        assert_eq!(rules_on("crates/core/tests/conc.rs", src).len(), 1);
        assert!(rules_on("crates/common/src/pool.rs", src).is_empty());
    }

    #[test]
    fn rogue_spawn_scoped_spawns_are_structured_concurrency() {
        // `scope.spawn` is joined by construction; only the free function
        // is a rogue thread source.
        let src = "std::thread::scope(|s| { s.spawn(|| {}); });";
        assert!(rules_on("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn rogue_spawn_allow_comment() {
        let src = "// gb-lint: allow(rogue-spawn) -- ownership-shape test\nstd::thread::spawn(f);";
        assert!(rules_on("crates/core/tests/conc.rs", src).is_empty());
    }

    // ---- lock-order ----

    #[test]
    fn lock_order_flags_inversion() {
        let src = "fn bad(&self) {\n\
                     let t = self.state.write();\n\
                     let s = self.shards[i].lock();\n\
                   }";
        let f = rules_on("crates/core/src/engine.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-order");
        assert!(f[0].message.contains("`shards`"));
        assert!(f[0].message.contains("`state`"));
    }

    #[test]
    fn lock_order_accepts_declared_order() {
        let src = "fn good(&self) {\n\
                     let g = self.rebuild_guard.lock();\n\
                     let s = self.shards[i].lock();\n\
                     let t = self.state.read();\n\
                   }";
        assert!(rules_on("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn lock_order_transient_guards_do_not_hold() {
        // A temporary dropped at end of statement does not pin an order.
        let src = "fn ok(&self) {\n\
                     *self.trie.write() = x;\n\
                     let s = self.shards[i].lock();\n\
                   }";
        assert!(rules_on("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn lock_order_let_of_chained_call_is_transient() {
        // The `let` binds the chain's result, not the guard: the guard is
        // a temporary dropped at the end of the statement.
        let src = "fn ok(&self) {\n\
                     let root = self.trie.read().root_cell();\n\
                     let s = self.shards[i].lock();\n\
                   }";
        assert!(rules_on("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn lock_order_release_at_block_close() {
        let src = "fn ok(&self) {\n\
                     { let t = self.trie.write(); }\n\
                     let s = self.shards[i].lock();\n\
                   }";
        assert!(rules_on("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn lock_order_equal_rank_reentry_flagged() {
        let src = "fn bad(&self) {\n\
                     let a = self.shards[i].lock();\n\
                     let b = self.shards[j].lock();\n\
                   }";
        let f = rules_on("crates/core/src/engine.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn lock_order_unknown_receivers_ignored() {
        let src = "fn ok() { let q = slots.lock(); let s = widgets.lock(); }";
        assert!(rules_on("crates/common/src/pool.rs", src).is_empty());
    }

    #[test]
    fn lock_order_covers_pool_and_serve_ranks() {
        // Engine-lock-then-queue is the declared direction...
        let src = "fn ok(&self) {\n\
                     let s = self.state.read();\n\
                     let q = self.queue.lock();\n\
                   }";
        assert!(rules_on("crates/common/src/pool.rs", src).is_empty());
        // ...queue-then-engine-lock is an inversion.
        let src = "fn bad(&self) {\n\
                     let q = self.queue.lock();\n\
                     let s = self.state.read();\n\
                   }";
        let f = rules_on("crates/common/src/pool.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`queue`"));
        // Serve-layer leaves are terminal: nothing may follow them.
        let src = "fn bad(&self) {\n\
                     let e = self.entries.lock();\n\
                     let b = self.buckets.lock();\n\
                   }";
        let f = rules_on("crates/serve/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    // ---- lossy-cast ----

    #[test]
    fn lossy_cast_fires_in_checked_files() {
        let f = rules_on("crates/store/src/lib.rs", "let n = len as u32;");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lossy-cast");
    }

    #[test]
    fn lossy_cast_widening_is_fine() {
        let src = "let a = x as u64; let b = y as usize; let c = z as f64;";
        assert!(rules_on("crates/store/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lossy_cast_other_files_and_tests_exempt() {
        assert!(rules_on("crates/core/src/block.rs", "let n = len as u32;").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let n = len as u8; }\n}";
        assert!(rules_on("crates/store/src/lib.rs", src).is_empty());
    }

    // ---- atomic-ordering ----

    #[test]
    fn atomic_ordering_fires_on_bare_relaxed() {
        let f = rules_on(
            "crates/serve/src/metrics.rs",
            "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-ordering");
        // An imported bare `Relaxed` offers no cover.
        let f = rules_on(
            "crates/core/src/engine.rs",
            "fn bump(c: &AtomicU64) { c.fetch_add(1, Relaxed); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn atomic_ordering_blessed_file_tests_and_allows_pass() {
        let src = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(rules_on("crates/common/src/stats.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n {src}\n}}");
        assert!(rules_on("crates/serve/src/metrics.rs", &in_tests).is_empty());
        let allowed = "// gb-lint: allow(atomic-ordering) -- seqlock stamp, pure tally\n\
                       fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(rules_on("crates/serve/src/metrics.rs", allowed).is_empty());
    }

    #[test]
    fn atomic_ordering_stronger_orderings_and_longer_idents_pass() {
        let src = "fn s(c: &AtomicU64) { c.store(1, Ordering::Release); }\n\
                   struct RelaxedFit; fn f(x: UnRelaxed) {}";
        assert!(rules_on("crates/serve/src/metrics.rs", src).is_empty());
    }

    // ---- masking interplay ----

    #[test]
    fn patterns_inside_strings_and_comments_never_fire() {
        let src = "fn d() {\n\
                     let msg = \"call .unwrap() or panic! later\";\n\
                     // thread::spawn is forbidden, x.unwrap() too\n\
                     let r = r#\"xs.iter().sum::<f64>()\"#;\n\
                   }";
        assert!(rules_on("crates/store/src/lib.rs", src).is_empty());
    }
}
