//! Grandfathered findings.
//!
//! A baseline lets the lint gate turn on *today* without first fixing
//! every historical finding: known findings are recorded as
//! `(rule, path, fingerprint-of-line)` entries and subtracted from each
//! run. Fingerprints hash the trimmed source line, not the line number,
//! so unrelated edits above a grandfathered site do not resurrect it —
//! while any edit *to* the offending line makes the finding fresh again
//! (the right default: touched code meets the current bar).
//!
//! Policy (see `DESIGN.md`): the baseline is for findings that are
//! neither worth fixing now nor blessed forever. Code that is correct
//! by design carries a `// gb-lint: allow(rule) -- why` instead, so the
//! justification lives next to the code. New findings are never
//! baselined without review; `--write-baseline` exists for the initial
//! adoption and for deliberate, reviewed re-baselines.

use crate::rules::Finding;
use std::collections::HashMap;
use std::path::Path;

/// FNV-1a 64 over the trimmed line: stable, dependency-free, and the
/// same digest family the snapshot container uses.
pub fn fingerprint(snippet: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in snippet.trim().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A loaded baseline: `(rule, path, fingerprint) → remaining matches`.
/// Identical lines in one file share a fingerprint, so entries carry a
/// count and matching consumes them one finding at a time.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: HashMap<(String, String, u64), usize>,
}

impl Baseline {
    /// Parse the on-disk format: one entry per line,
    /// `rule <TAB> path <TAB> hex-fingerprint <TAB> count <TAB> snippet`,
    /// `#` comments and blank lines ignored. The snippet field is for
    /// human readers only — matching uses the fingerprint.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = HashMap::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(5, '\t');
            let (rule, path, fp, count) =
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(r), Some(p), Some(f), Some(c)) => (r, p, f, c),
                    _ => return Err(format!("baseline line {}: expected 4+ fields", no + 1)),
                };
            let fp = u64::from_str_radix(fp, 16)
                .map_err(|_| format!("baseline line {}: bad fingerprint `{fp}`", no + 1))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", no + 1))?;
            *entries
                .entry((rule.to_string(), path.to_string(), fp))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Load from a file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read baseline {}: {e}", path.display())),
        }
    }

    /// Number of entries (summed counts).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split `findings` into (fresh, grandfathered), consuming matches.
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut remaining = self.entries.clone();
        let mut fresh = Vec::new();
        let mut old = Vec::new();
        for f in findings {
            let key = (f.rule.to_string(), f.path.clone(), fingerprint(&f.snippet));
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    old.push(f);
                }
                _ => fresh.push(f),
            }
        }
        (fresh, old)
    }

    /// Render `findings` as baseline file content.
    pub fn render(findings: &[Finding]) -> String {
        let mut counted: HashMap<(&str, &str, u64), (usize, &str)> = HashMap::new();
        for f in findings {
            let e = counted
                .entry((f.rule, &f.path, fingerprint(&f.snippet)))
                .or_insert((0, f.snippet.as_str()));
            e.0 += 1;
        }
        let mut rows: Vec<String> = counted
            .into_iter()
            .map(|((rule, path, fp), (count, snippet))| {
                format!("{rule}\t{path}\t{fp:016x}\t{count}\t{snippet}")
            })
            .collect();
        rows.sort();
        let mut out = String::from(
            "# gb_lint baseline: grandfathered findings (rule, path, line-fingerprint, count, snippet)\n\
             # Regenerate with `cargo run -p gb_lint -- --write-baseline`; see DESIGN.md for policy.\n",
        );
        for r in rows {
            out.push_str(&r);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, line: usize, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_partition() {
        let findings = vec![
            f("float-fold", "a.rs", 10, "x.sum::<f64>()"),
            f("float-fold", "a.rs", 20, "x.sum::<f64>()"), // same content twice
            f("panic-path", "b.rs", 5, "y.unwrap()"),
        ];
        let text = Baseline::render(&findings);
        let base = Baseline::parse(&text).expect("parses");
        assert_eq!(base.len(), 3);

        // Same findings again (lines moved): all grandfathered.
        let moved = vec![
            f("float-fold", "a.rs", 11, "  x.sum::<f64>()  "),
            f("float-fold", "a.rs", 99, "x.sum::<f64>()"),
            f("panic-path", "b.rs", 1, "y.unwrap()"),
        ];
        let (fresh, old) = base.partition(moved);
        assert!(fresh.is_empty(), "{fresh:?}");
        assert_eq!(old.len(), 3);

        // A third identical occurrence exceeds the count: fresh.
        let extra = vec![
            f("float-fold", "a.rs", 1, "x.sum::<f64>()"),
            f("float-fold", "a.rs", 2, "x.sum::<f64>()"),
            f("float-fold", "a.rs", 3, "x.sum::<f64>()"),
        ];
        let (fresh, old) = base.partition(extra);
        assert_eq!(fresh.len(), 1);
        assert_eq!(old.len(), 2);

        // Edited line → new fingerprint → fresh.
        let edited = vec![f("panic-path", "b.rs", 5, "y.unwrap() // changed")];
        let (fresh, _) = base.partition(edited);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/gb-lint-baseline")).expect("empty");
        assert!(b.is_empty());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Baseline::parse("only\ttwo\n").is_err());
        assert!(Baseline::parse("r\tp\tnothex\t1\tsnip\n").is_err());
        assert!(Baseline::parse("r\tp\tdeadbeef\tNaN\tsnip\n").is_err());
        assert!(Baseline::parse("# comment\n\n").expect("ok").is_empty());
    }
}
