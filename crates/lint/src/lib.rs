//! `gb_lint` — the GeoBlocks workspace invariant checker.
//!
//! The repo's correctness story rests on invariants that no compiler
//! pass enforces: decode/serve paths never panic (they return typed
//! errors), float aggregates only come from the canonical in-order fold
//! kernels (so parallel == serial bit-for-bit), all concurrency goes
//! through `gb_common::pool`, and `GeoBlockEngine`'s locks are acquired
//! in a declared order. This crate turns those conventions into a CI
//! gate: a dependency-free static pass over the workspace source.
//!
//! * [`lexer`] — a small Rust lexer that masks strings/chars/comments
//!   and tracks `#[cfg(test)]` regions, so rules only see real code.
//! * [`rules`] — the rule engine: `panic-path`, `float-fold`,
//!   `rogue-spawn`, `lock-order`, `lossy-cast`.
//! * [`config`] — the workspace-specific scoping tables (which modules
//!   are panic-free, the lock-order ranks, …).
//! * [`baseline`] — grandfathered findings, fingerprinted by line
//!   content so they survive unrelated edits but not edits to the line.
//!
//! Suppression is per-line: `// gb-lint: allow(rule) -- justification`.
//! The static `lock-order` rule has a runtime counterpart in
//! `gb_common::sync` (`OrderedMutex`/`OrderedRwLock`), which checks the
//! same declared order on every acquisition under `debug_assertions`.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod rules;

pub use baseline::Baseline;
pub use config::Config;
pub use lexer::SourceFile;
pub use rules::{check_file, Finding, RuleInfo, RULES};

use std::path::{Path, PathBuf};

/// Directory names never scanned: vendored shims are third-party API
/// surface, build outputs are generated.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github", ".claude"];

/// Result of a full workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by an allow directive or the baseline.
    pub fresh: Vec<Finding>,
    /// Findings matched (and consumed) by baseline entries.
    pub grandfathered: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Collect every `.rs` file under `root`, skipping `SKIP_DIRS`
/// (vendor, target, dot-directories), sorted for deterministic output.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The workspace-relative, `/`-separated form of `path`.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy()
        .replace(std::path::MAIN_SEPARATOR, "/")
}

/// Lint one file (already read) against `cfg`. Allow directives are
/// applied here; baseline subtraction happens in [`run`].
pub fn lint_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let whole_file_test = rel_path.split('/').any(|c| c == "tests");
    let file = SourceFile::scan(rel_path, source, whole_file_test);
    check_file(&file, cfg)
}

/// Lint the whole workspace under `root`; `baseline` (if any) absorbs
/// grandfathered findings.
pub fn run(root: &Path, cfg: &Config, baseline: Option<&Baseline>) -> std::io::Result<Report> {
    let mut findings = Vec::new();
    let files = collect_files(root)?;
    let files_scanned = files.len();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&relative(root, &path), &source, cfg));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let (fresh, grandfathered) = match baseline {
        Some(b) => b.partition(findings),
        None => (findings, Vec::new()),
    };
    Ok(Report {
        fresh,
        grandfathered,
        files_scanned,
    })
}

/// Default baseline location: checked in next to the linter itself.
pub fn default_baseline_path(root: &Path) -> PathBuf {
    root.join("crates/lint/baseline.txt")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/w");
        assert_eq!(
            relative(root, Path::new("/w/crates/core/src/engine.rs")),
            "crates/core/src/engine.rs"
        );
    }

    #[test]
    fn tests_dirs_are_whole_file_test_regions() {
        let cfg = Config::workspace();
        // unwrap in an integration test of a panic-free crate: exempt.
        let f = lint_source("crates/store/tests/x.rs", "fn t() { x.unwrap(); }", &cfg);
        assert!(f.is_empty(), "{f:?}");
        // but rogue-spawn still applies there.
        let f = lint_source(
            "crates/store/tests/x.rs",
            "fn t() { std::thread::spawn(|| {}); }",
            &cfg,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "rogue-spawn");
    }
}
