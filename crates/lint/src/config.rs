//! The workspace-specific rule configuration: which modules must stay
//! panic-free, where float folds are blessed, where threads may be
//! spawned, the engine lock-order table, and which files get the strict
//! narrowing-cast treatment.
//!
//! This is deliberately a checked-in Rust table rather than a config
//! file: changing the invariant surface is a reviewed code change, and
//! the table doubles as documentation (see `DESIGN.md` "Static analysis
//! & invariants").

/// Rule configuration for one workspace.
#[derive(Debug, Clone)]
pub struct Config {
    /// Modules where `panic-path` applies: decode/serve code that must
    /// return typed errors instead of panicking. Entries ending in `/`
    /// are directory prefixes; others are exact file paths (relative to
    /// the workspace root, `/`-separated).
    pub panic_free: Vec<String>,
    /// Files whose float folds define the canonical in-order kernels;
    /// `float-fold` fires everywhere else.
    pub float_blessed: Vec<String>,
    /// Files allowed to call `thread::spawn` (the pool is the only
    /// sanctioned thread source).
    pub spawn_blessed: Vec<String>,
    /// Files whose `Ordering::Relaxed` is the point (the stats-counter
    /// module); `atomic-ordering` fires everywhere else.
    pub relaxed_blessed: Vec<String>,
    /// Files where `lossy-cast` applies (length/offset decoding).
    pub cast_checked: Vec<String>,
    /// The declared engine lock order: a lock may only be acquired while
    /// holding locks of *strictly lower* rank. Names are the receiver
    /// identifiers as they appear at call sites.
    pub lock_ranks: Vec<(String, u8)>,
}

impl Config {
    /// The GeoBlocks workspace configuration.
    pub fn workspace() -> Config {
        let s = |v: &[&str]| v.iter().map(|p| (*p).to_string()).collect();
        Config {
            panic_free: s(&[
                "crates/store/src/",
                "crates/serve/src/",
                "crates/trace/src/",
                "crates/core/src/api.rs",
                "crates/core/src/snapshot.rs",
                "crates/core/src/engine.rs",
                "crates/core/src/trie.rs",
                "crates/core/src/memo.rs",
            ]),
            float_blessed: s(&["crates/core/src/pyramid.rs", "crates/core/src/aggregate.rs"]),
            // `gb_check` wraps every model thread in a real OS thread it
            // fully schedules; it is the second sanctioned thread source.
            spawn_blessed: s(&["crates/common/src/pool.rs", "crates/check/src/"]),
            cast_checked: s(&["crates/store/src/lib.rs", "crates/core/src/snapshot.rs"]),
            relaxed_blessed: s(&["crates/common/src/stats.rs"]),
            // The workspace lock order: publisher guards first, then
            // hit-statistic shards and their rank-1 peers (the covering
            // -memo shards and the hot-query table — leaf caches that
            // never nest), then the state pointer (block + trie + data
            // epoch), then the pool queue, then the serve-layer leaf
            // locks (result-cache entries, quota buckets). `shard` is
            // the conventional loop-variable name for one element of
            // `shards`. The same table is enforced at runtime by
            // `gb_common::sync` and at model time by `gb_check`.
            lock_ranks: vec![
                ("rebuild_guard".to_string(), 0),
                ("publish_guard".to_string(), 0),
                ("shards".to_string(), 1),
                ("shard".to_string(), 1),
                ("memo".to_string(), 1),
                ("hot_queries".to_string(), 1),
                ("state".to_string(), 2),
                ("queue".to_string(), 3),
                ("entries".to_string(), 4),
                ("buckets".to_string(), 4),
                // Flight-recorder rings (gb_trace): leaf locks, never
                // held across any other acquisition.
                ("traces".to_string(), 4),
            ],
        }
    }

    /// Does `path` fall under the `panic_free` module list?
    pub fn is_panic_free(&self, path: &str) -> bool {
        Self::listed(&self.panic_free, path)
    }

    /// Is `path` one of the blessed fold-kernel files?
    pub fn is_float_blessed(&self, path: &str) -> bool {
        Self::listed(&self.float_blessed, path)
    }

    /// May `path` spawn threads?
    pub fn is_spawn_blessed(&self, path: &str) -> bool {
        Self::listed(&self.spawn_blessed, path)
    }

    /// Does `path` get the narrowing-cast rule?
    pub fn is_cast_checked(&self, path: &str) -> bool {
        Self::listed(&self.cast_checked, path)
    }

    /// May `path` use `Ordering::Relaxed` without justification?
    pub fn is_relaxed_blessed(&self, path: &str) -> bool {
        Self::listed(&self.relaxed_blessed, path)
    }

    /// Rank of a lock receiver name, if it is a declared engine lock.
    pub fn lock_rank(&self, name: &str) -> Option<u8> {
        self.lock_ranks
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
    }

    fn listed(list: &[String], path: &str) -> bool {
        list.iter()
            .any(|p| path == p || (p.ends_with('/') && path.starts_with(p.as_str())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_exact_matching() {
        let cfg = Config::workspace();
        assert!(cfg.is_panic_free("crates/store/src/lib.rs"));
        assert!(cfg.is_panic_free("crates/core/src/snapshot.rs"));
        assert!(cfg.is_panic_free("crates/trace/src/lib.rs"));
        assert!(!cfg.is_panic_free("crates/core/src/block.rs"));
        assert!(cfg.is_float_blessed("crates/core/src/pyramid.rs"));
        assert!(cfg.is_spawn_blessed("crates/common/src/pool.rs"));
        assert!(!cfg.is_spawn_blessed("crates/core/src/engine.rs"));
    }

    #[test]
    fn lock_ranks_are_ordered() {
        let cfg = Config::workspace();
        assert!(cfg.lock_rank("rebuild_guard") < cfg.lock_rank("shards"));
        assert!(cfg.lock_rank("shards") < cfg.lock_rank("state"));
        assert!(cfg.lock_rank("state") < cfg.lock_rank("queue"));
        assert!(cfg.lock_rank("queue") < cfg.lock_rank("entries"));
        assert_eq!(cfg.lock_rank("shard"), cfg.lock_rank("shards"));
        assert_eq!(
            cfg.lock_rank("publish_guard"),
            cfg.lock_rank("rebuild_guard")
        );
        assert_eq!(cfg.lock_rank("entries"), cfg.lock_rank("buckets"));
        assert_eq!(cfg.lock_rank("traces"), cfg.lock_rank("entries"));
        assert_eq!(cfg.lock_rank("memo"), cfg.lock_rank("shards"));
        assert_eq!(cfg.lock_rank("hot_queries"), cfg.lock_rank("shards"));
        assert!(cfg.lock_rank("memo") < cfg.lock_rank("state"));
        assert_eq!(cfg.lock_rank("trie"), None);
    }

    #[test]
    fn relaxed_and_spawn_blessings_are_scoped() {
        let cfg = Config::workspace();
        assert!(cfg.is_relaxed_blessed("crates/common/src/stats.rs"));
        assert!(!cfg.is_relaxed_blessed("crates/common/src/pool.rs"));
        assert!(!cfg.is_relaxed_blessed("crates/serve/src/metrics.rs"));
        assert!(cfg.is_spawn_blessed("crates/check/src/thread_api.rs"));
        assert!(!cfg.is_spawn_blessed("crates/check/tests/kernels.rs"));
    }
}
