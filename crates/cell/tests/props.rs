//! Property tests for the cell-grid substrate.
//!
//! These pin down the invariants the whole GeoBlocks stack builds on:
//! exact curve inverses, hierarchical prefix structure, cell-id arithmetic,
//! and the covering superset + error-bound guarantees of §3.1–§3.2.

use gb_cell::{cover_polygon, CellId, CellUnion, CovererOptions, CurveKind, Grid, MAX_LEVEL};
use gb_geom::{Point, Polygon, Rect};
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = CurveKind> {
    prop_oneof![Just(CurveKind::Hilbert), Just(CurveKind::Morton)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn curve_roundtrip(curve in arb_curve(), x in 0u32..(1 << 30), y in 0u32..(1 << 30)) {
        let d = curve.xy_to_d(30, x, y);
        prop_assert_eq!(curve.d_to_xy(30, d), (x, y));
    }

    #[test]
    fn curve_hierarchical(curve in arb_curve(), x in 0u32..(1 << 30), y in 0u32..(1 << 30), lift in 1u8..10) {
        // Parent-cell index is the child's index shifted by 2·lift, with
        // coordinates shifted by lift — the prefix property (§3.1).
        let d = curve.xy_to_d(30, x, y);
        let coarse = curve.xy_to_d(30 - lift, x >> lift, y >> lift);
        prop_assert_eq!(coarse, d >> (2 * lift));
    }

    #[test]
    fn cell_id_level_parent_roundtrip(pos in 0u64..(1u64 << 60), level in 0u8..=MAX_LEVEL) {
        let cell = CellId::from_pos_level(pos, level);
        prop_assert!(cell.is_valid());
        prop_assert_eq!(cell.level(), level);
        // Ancestors contain, and contain transitively.
        let leaf = CellId::from_leaf_pos(pos);
        prop_assert!(cell.contains(leaf));
        for l in 0..level {
            prop_assert!(cell.parent_at(l).contains(cell));
        }
    }

    #[test]
    fn cell_range_covers_exactly_descendants(pos in 0u64..(1u64 << 60), level in 0u8..=MAX_LEVEL, other in 0u64..(1u64 << 60)) {
        let cell = CellId::from_pos_level(pos, level);
        let probe = CellId::from_leaf_pos(other);
        let by_range = probe.raw() >= cell.range_min().raw() && probe.raw() <= cell.range_max().raw();
        let by_prefix = probe.parent_at(level) == cell;
        prop_assert_eq!(by_range, by_prefix);
        prop_assert_eq!(cell.contains(probe), by_prefix);
    }

    #[test]
    fn children_partition_parent(pos in 0u64..(1u64 << 60), level in 0u8..MAX_LEVEL) {
        let cell = CellId::from_pos_level(pos, level);
        let kids = cell.children();
        prop_assert_eq!(kids[0].range_min(), cell.range_min());
        prop_assert_eq!(kids[3].range_max(), cell.range_max());
        for w in kids.windows(2) {
            prop_assert_eq!(w[0].range_max().raw() + 2, w[1].range_min().raw());
        }
    }

    #[test]
    fn common_ancestor_is_deepest(a in 0u64..(1u64 << 60), b in 0u64..(1u64 << 60), la in 0u8..=MAX_LEVEL, lb in 0u8..=MAX_LEVEL) {
        let ca = CellId::from_pos_level(a, la);
        let cb = CellId::from_pos_level(b, lb);
        let anc = ca.common_ancestor(cb);
        prop_assert!(anc.contains(ca));
        prop_assert!(anc.contains(cb));
        // One level deeper no longer contains both (when available).
        let deeper = anc.level() + 1;
        if deeper <= la.min(lb) {
            prop_assert!(ca.parent_at(deeper) != cb.parent_at(deeper));
        }
    }

    #[test]
    fn grid_point_cell_consistency(curve in arb_curve(),
                                   x in 0.0f64..1000.0, y in 0.0f64..500.0,
                                   level in 0u8..=16) {
        let grid = Grid::new(Rect::from_bounds(0.0, 0.0, 1000.0, 500.0), curve);
        let p = Point::new(x, y);
        let cell = grid.cell_for_point(p, level);
        prop_assert_eq!(cell.level(), level);
        let r = grid.cell_rect(cell);
        prop_assert!(r.contains_point(p), "cell rect {:?} lost point {:?}", r, p);
        // The rect has the advertised per-level size.
        let (w, h) = grid.cell_size(level);
        prop_assert!((r.width() - w).abs() < 1e-9 * w.max(1.0));
        prop_assert!((r.height() - h).abs() < 1e-9 * h.max(1.0));
    }

    #[test]
    fn union_contains_matches_linear_scan(
        positions in prop::collection::vec((0u64..(1u64 << 60), 4u8..=14u8), 1..24),
        probe in 0u64..(1u64 << 60),
    ) {
        let cells: Vec<CellId> = positions.iter().map(|&(p, l)| CellId::from_pos_level(p, l)).collect();
        let union = CellUnion::from_cells(cells.clone());
        let leaf = CellId::from_leaf_pos(probe);
        let linear = cells.iter().any(|c| c.contains(leaf));
        prop_assert_eq!(union.contains(leaf), linear);
    }

    #[test]
    fn union_normalization_preserves_leafcount_region(
        positions in prop::collection::vec((0u64..(1u64 << 20), 2u8..=8u8), 1..16),
    ) {
        // Normalizing never changes the covered region.
        let cells: Vec<CellId> = positions.iter().map(|&(p, l)| CellId::from_pos_level(p << 40, l)).collect();
        let union = CellUnion::from_cells(cells.clone());
        // Region check on sampled leaves of every input cell: each input
        // cell's first and last leaf must be covered.
        for c in &cells {
            prop_assert!(union.contains(c.range_min()));
            prop_assert!(union.contains(c.range_max()));
        }
        // And no covered leaf outside every input cell: probe each union
        // cell's first leaf.
        for c in union.iter() {
            let leaf = c.range_min();
            prop_assert!(cells.iter().any(|i| i.contains(leaf)));
        }
    }
}

proptest! {
    // Covering tests run the full coverer; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn covering_is_superset_and_bounded(
        curve in arb_curve(),
        cx in 200.0f64..800.0, cy in 200.0f64..800.0,
        r in 30.0f64..180.0,
        n_vertices in 3usize..9,
        level in 5u8..=9,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(Rect::from_bounds(0.0, 0.0, 1024.0, 1024.0), curve);
        // An irregular star-ish polygon around (cx, cy).
        let ring: Vec<Point> = (0..n_vertices).map(|i| {
            let jitter = 0.5 + 0.5 * (((seed.wrapping_mul(2654435761).wrapping_add(i as u64 * 97)) % 1000) as f64 / 1000.0);
            let a = std::f64::consts::TAU * i as f64 / n_vertices as f64;
            Point::new(cx + r * jitter * a.cos(), cy + r * jitter * a.sin())
        }).collect();
        let poly = Polygon::new(ring);
        let cov = cover_polygon(&grid, &poly, CovererOptions::at_level(level));

        // Superset: sampled interior points are covered.
        let bbox = poly.bbox();
        for i in 0..12 {
            for j in 0..12 {
                let p = Point::new(
                    bbox.min.x + bbox.width() * (i as f64 + 0.5) / 12.0,
                    bbox.min.y + bbox.height() * (j as f64 + 0.5) / 12.0,
                );
                if poly.contains_point(p) {
                    prop_assert!(cov.contains(grid.leaf_for_point(p)), "lost {:?}", p);
                }
            }
        }

        // Bounded error: points far outside the polygon are NOT covered.
        let bound = grid.cell_diagonal(level);
        for i in 0..12 {
            let a = std::f64::consts::TAU * i as f64 / 12.0;
            let far = Point::new(cx + (2.0 * r + 2.0 * bound) * a.cos(), cy + (2.0 * r + 2.0 * bound) * a.sin());
            if grid.domain().contains_point(far) && gb_geom::interior::signed_distance(&poly, far) < -bound * 1.5 {
                prop_assert!(!cov.contains(grid.leaf_for_point(far)), "covered far point {:?}", far);
            }
        }
    }
}
