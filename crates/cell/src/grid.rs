//! The grid: a bounded rectangular world domain mapped onto the cell
//! hierarchy by a space-filling curve.
//!
//! This is the planar stand-in for S2's sphere decomposition (see the
//! substitution table in `DESIGN.md`). A [`Grid`] owns the world rectangle
//! and the curve choice and converts between world coordinates, grid
//! coordinates, and [`CellId`]s. The paper's error bound is exposed as
//! [`Grid::cell_diagonal`] per level and [`Grid::level_for_error`]
//! ("the user can specify the error bound by choosing an appropriate cell
//! level so that the cell's diagonal is not greater than her desired
//! error", §3.2).

use crate::curve::CurveKind;
use crate::id::{CellId, MAX_LEVEL};
use gb_geom::{Point, Rect};

/// Number of grid columns/rows at leaf resolution.
const LEAF_SIDE: u64 = 1 << MAX_LEVEL as u64;

/// A bounded 2-D domain decomposed into the hierarchical cell grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    rect: Rect,
    curve: CurveKind,
}

impl Grid {
    /// A grid over `rect` enumerated by `curve`.
    ///
    /// Panics if the rectangle is empty or degenerate.
    pub fn new(rect: Rect, curve: CurveKind) -> Self {
        assert!(!rect.is_empty(), "grid domain must be non-empty");
        assert!(
            rect.width() > 0.0 && rect.height() > 0.0,
            "grid domain must have positive extent"
        );
        assert!(rect.min.is_finite() && rect.max.is_finite());
        Grid { rect, curve }
    }

    /// Hilbert-enumerated grid over `rect` (the paper's configuration).
    pub fn hilbert(rect: Rect) -> Self {
        Grid::new(rect, CurveKind::Hilbert)
    }

    /// The world-coordinate domain.
    #[inline]
    pub fn domain(&self) -> Rect {
        self.rect
    }

    /// The curve enumerating the cells.
    #[inline]
    pub fn curve(&self) -> CurveKind {
        self.curve
    }

    /// Integer grid coordinates of a world point at leaf resolution.
    ///
    /// Points outside the domain are clamped onto its border — GeoBlocks is
    /// built over a domain chosen to contain the (cleaned) data, so this
    /// only matters for query polygons that stick out of the domain, where
    /// clamping matches "nothing beyond the domain can match".
    #[inline]
    pub fn leaf_ij(&self, p: Point) -> (u32, u32) {
        let fx = ((p.x - self.rect.min.x) / self.rect.width()).clamp(0.0, 1.0);
        let fy = ((p.y - self.rect.min.y) / self.rect.height()).clamp(0.0, 1.0);
        let i = ((fx * LEAF_SIDE as f64) as u64).min(LEAF_SIDE - 1) as u32;
        let j = ((fy * LEAF_SIDE as f64) as u64).min(LEAF_SIDE - 1) as u32;
        (i, j)
    }

    /// Leaf cell containing the world point (§3.1 "point approximation").
    #[inline]
    pub fn leaf_for_point(&self, p: Point) -> CellId {
        let (i, j) = self.leaf_ij(p);
        CellId::from_leaf_pos(self.curve.xy_to_d(MAX_LEVEL, i, j))
    }

    /// Cell at `level` containing the world point.
    #[inline]
    pub fn cell_for_point(&self, p: Point, level: u8) -> CellId {
        self.leaf_for_point(p).parent_at(level)
    }

    /// World-coordinate rectangle covered by `cell`.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let level = cell.level();
        let side = 1u64 << u64::from(level);
        let pos = cell.pos_at_own_level();
        let (i, j) = if level == 0 {
            (0, 0)
        } else {
            self.curve.d_to_xy(level, pos)
        };
        let w = self.rect.width() / side as f64;
        let h = self.rect.height() / side as f64;
        let x0 = self.rect.min.x + f64::from(i) * w;
        let y0 = self.rect.min.y + f64::from(j) * h;
        Rect::from_bounds(x0, y0, x0 + w, y0 + h)
    }

    /// Side lengths (ε₁, ε₂) of a cell at `level`.
    #[inline]
    pub fn cell_size(&self, level: u8) -> (f64, f64) {
        let side = (1u64 << u64::from(level)) as f64;
        (self.rect.width() / side, self.rect.height() / side)
    }

    /// Cell diagonal √(ε₁² + ε₂²) at `level` — the §3.2 maximum spatial
    /// error of a covering whose boundary cells are at `level`.
    #[inline]
    pub fn cell_diagonal(&self, level: u8) -> f64 {
        let (w, h) = self.cell_size(level);
        (w * w + h * h).sqrt()
    }

    /// Smallest (coarsest) level whose cell diagonal is ≤ `max_error`,
    /// or [`MAX_LEVEL`] if even leaves are larger.
    pub fn level_for_error(&self, max_error: f64) -> u8 {
        assert!(max_error > 0.0, "error bound must be positive");
        for level in 0..=MAX_LEVEL {
            if self.cell_diagonal(level) <= max_error {
                return level;
            }
        }
        MAX_LEVEL
    }

    /// Smallest cell containing the whole (clamped) rectangle.
    pub fn cell_covering_rect(&self, rect: &Rect) -> CellId {
        let a = self.leaf_for_point(rect.min);
        let b = self.leaf_for_point(rect.max);
        // The two diagonal corners do not necessarily bound the curve
        // positions of the other corners; take the ancestor over all four.
        let c = self.leaf_for_point(Point::new(rect.min.x, rect.max.y));
        let d = self.leaf_for_point(Point::new(rect.max.x, rect.min.y));
        a.common_ancestor(b).common_ancestor(c.common_ancestor(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid() -> Grid {
        Grid::hilbert(Rect::from_bounds(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn point_to_leaf_roundtrip_region() {
        let g = unit_grid();
        let p = Point::new(0.3, 0.7);
        let leaf = g.leaf_for_point(p);
        let r = g.cell_rect(leaf);
        assert!(r.contains_point(p), "leaf rect {r:?} must contain {p:?}");
        // Leaf rects are tiny.
        assert!(r.width() <= 1.0 / (1u64 << 30) as f64 * 1.0001);
    }

    #[test]
    fn cell_rect_nests() {
        let g = Grid::new(
            Rect::from_bounds(-10.0, 5.0, 30.0, 25.0),
            CurveKind::Hilbert,
        );
        let p = Point::new(12.0, 17.5);
        let leaf = g.leaf_for_point(p);
        let mut prev = g.cell_rect(leaf.parent_at(0));
        for level in 1..=12u8 {
            let r = g.cell_rect(leaf.parent_at(level));
            assert!(
                prev.contains_rect(&r),
                "level {level}: {prev:?} should contain {r:?}"
            );
            assert!(r.contains_point(p));
            prev = r;
        }
    }

    #[test]
    fn children_tile_parent() {
        let g = unit_grid();
        let cell = g.cell_for_point(Point::new(0.5, 0.5), 6);
        let pr = g.cell_rect(cell);
        let total: f64 = cell.children().iter().map(|c| g.cell_rect(*c).area()).sum();
        assert!((total - pr.area()).abs() < 1e-15);
        for c in cell.children() {
            assert!(pr.contains_rect(&g.cell_rect(c)));
        }
    }

    #[test]
    fn clamping_outside_points() {
        let g = unit_grid();
        let inside_edge = g.leaf_for_point(Point::new(0.0, 0.5));
        let outside = g.leaf_for_point(Point::new(-5.0, 0.5));
        assert_eq!(inside_edge, outside);
    }

    #[test]
    fn diagonal_halves_per_level() {
        let g = Grid::hilbert(Rect::from_bounds(0.0, 0.0, 100.0, 50.0));
        for level in 0..10u8 {
            let d0 = g.cell_diagonal(level);
            let d1 = g.cell_diagonal(level + 1);
            assert!((d0 / d1 - 2.0).abs() < 1e-9, "level {level}");
        }
    }

    #[test]
    fn level_for_error_bounds() {
        let g = Grid::hilbert(Rect::from_bounds(0.0, 0.0, 1024.0, 1024.0));
        // Root diagonal = 1024·√2 ≈ 1448.2; asking for 1500 keeps level 0.
        assert_eq!(g.level_for_error(1500.0), 0);
        let lvl = g.level_for_error(10.0);
        assert!(g.cell_diagonal(lvl) <= 10.0);
        assert!(g.cell_diagonal(lvl - 1) > 10.0);
        // Unreachably small error: clamps to MAX_LEVEL.
        assert_eq!(g.level_for_error(1e-12), MAX_LEVEL);
    }

    #[test]
    fn covering_cell_contains_rect() {
        let g = unit_grid();
        let r = Rect::from_bounds(0.2, 0.2, 0.3, 0.35);
        let cell = g.cell_covering_rect(&r);
        let cr = g.cell_rect(cell);
        assert!(
            cr.contains_rect(&r),
            "cell rect {cr:?} must contain query rect {r:?}"
        );
    }

    #[test]
    fn covering_cell_is_reasonably_tight() {
        let g = unit_grid();
        // A tiny rect away from major cell boundaries gets a deep cell.
        let r = Rect::from_bounds(0.101, 0.201, 0.102, 0.202);
        let cell = g.cell_covering_rect(&r);
        assert!(cell.level() >= 5, "expected deep cell, got {cell:?}");
    }

    #[test]
    fn morton_grid_works_too() {
        let g = Grid::new(Rect::from_bounds(0.0, 0.0, 1.0, 1.0), CurveKind::Morton);
        let p = Point::new(0.9, 0.1);
        let leaf = g.leaf_for_point(p);
        assert!(g.cell_rect(leaf).contains_point(p));
        assert!(g.cell_rect(leaf.parent_at(5)).contains_point(p));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_domain() {
        Grid::hilbert(Rect::empty());
    }
}
