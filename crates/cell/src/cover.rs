//! Polygon → cell-covering computation (the paper's §3.1 "polygon
//! approximation", Figure 4).
//!
//! The covering maps an arbitrary query polygon to a set of cells, possibly
//! at different levels. Two regimes matter:
//!
//! * **Error-bounded covering** (the default, used by GeoBlocks queries):
//!   cells *fully inside* the polygon may stay coarse — they contribute no
//!   boundary error and make COUNT queries cheaper (§3.5 "we benefit from
//!   having larger query cells"). Cells that touch the outline are always
//!   subdivided down to `max_level`, so every covering cell is within the
//!   block-level cell diagonal of the polygon: the §3.2 bound.
//! * **Budgeted covering** (`max_cells`): an S2-RegionCoverer-style
//!   approximation that stops subdividing when the budget is reached. Used
//!   by ablation benches; the error bound then no longer holds.
//!
//! The covering is always a **superset** of the polygon (false positives
//! only, §4.3), which the property tests assert.

use crate::grid::Grid;
use crate::id::{CellId, MAX_LEVEL};
use crate::union::CellUnion;
#[cfg(test)]
use gb_geom::{classify_rect, RectRelation};
use gb_geom::{Polygon, Rect};

/// Options controlling [`cover_polygon`].
#[derive(Debug, Clone, Copy)]
pub struct CovererOptions {
    /// Deepest level used; boundary cells end up exactly here. This is the
    /// GeoBlock's block level when covering for a query.
    pub max_level: u8,
    /// Coarsest level allowed in the output. Cells above this are
    /// subdivided even when fully interior. Default 0 (no constraint).
    pub min_level: u8,
    /// Optional soft cap on the number of cells. `None` (default) keeps
    /// the error-bounded behaviour.
    pub max_cells: Option<usize>,
}

impl CovererOptions {
    /// Error-bounded covering at `max_level`.
    pub fn at_level(max_level: u8) -> Self {
        CovererOptions {
            max_level,
            min_level: 0,
            max_cells: None,
        }
    }
}

impl Default for CovererOptions {
    fn default() -> Self {
        CovererOptions::at_level(MAX_LEVEL)
    }
}

/// A polygon edge with its bounding box, for hierarchical clipping.
struct ClipEdge {
    a: gb_geom::Point,
    b: gb_geom::Point,
    bbox: Rect,
}

/// True if the closed segment shares any point with the closed rect.
#[inline]
fn edge_touches_rect(e: &ClipEdge, rect: &Rect) -> bool {
    e.bbox.intersects(rect) && gb_geom::segment_intersects_rect(e.a, e.b, rect)
}

/// Compute a cell covering of `poly` on `grid`.
///
/// Returns a normalized [`CellUnion`]; empty if the polygon lies outside
/// the grid domain.
///
/// The recursion keeps, per cell, only the polygon edges that touch the
/// cell's rectangle (hierarchical clipping): classification cost shrinks
/// with depth, so query-time coverings stay in the microsecond range —
/// the covering is computed on the fly for every query (§3.1).
pub fn cover_polygon(grid: &Grid, poly: &Polygon, opts: CovererOptions) -> CellUnion {
    assert!(opts.max_level <= MAX_LEVEL);
    assert!(opts.min_level <= opts.max_level);

    // Start from the (up to four) cells at the bbox-matched level that
    // contain the bounding-box corners. A single common ancestor can sit
    // near the root whenever the bbox straddles a curve discontinuity —
    // the corner set stays tight regardless and jointly covers the bbox
    // (a bbox no larger than a cell spans at most a 2×2 cell window).
    let bbox = poly.bbox().intersection(&grid.domain());
    if bbox.is_empty() {
        return CellUnion::new();
    }
    let mut lvl = 0u8;
    while lvl < opts.max_level {
        let (w, h) = grid.cell_size(lvl + 1);
        if w < bbox.width() || h < bbox.height() {
            break;
        }
        lvl += 1;
    }
    let mut starts: Vec<CellId> = bbox
        .corners()
        .iter()
        .map(|&c| grid.leaf_for_point(c).parent_at(lvl))
        .collect();
    starts.sort_unstable();
    starts.dedup();
    let start_cursors: Vec<crate::curve::CurveCursor> = starts
        .iter()
        .map(|s| {
            crate::curve::CurveCursor::at(
                grid.curve(),
                (1..=s.level()).map(|l| s.child_position(l)),
            )
        })
        .collect();

    let edges: Vec<ClipEdge> = poly
        .edges()
        .map(|(a, b)| ClipEdge {
            a,
            b,
            bbox: Rect::bounding(&[a, b]),
        })
        .collect();
    let all: Vec<u32> = (0..edges.len() as u32).collect();

    let mut cov = Coverer {
        poly,
        edges,
        opts,
        out: Vec::new(),
        budget_used: 0,
        // One reusable candidate buffer per recursion depth: siblings at
        // depth d consume their parent's buffer (d−1) and write their own
        // into slot d, so no per-cell allocation happens.
        scratch: vec![Vec::new(); usize::from(MAX_LEVEL) + 2],
    };
    for (start, cursor) in starts.into_iter().zip(start_cursors) {
        let rect = grid.cell_rect(start);
        cov.visit(start, rect, cursor, &all, 0);
    }
    CellUnion::from_cells_with_floor(cov.out, opts.min_level)
}

struct Coverer<'a> {
    poly: &'a Polygon,
    edges: Vec<ClipEdge>,
    opts: CovererOptions,
    out: Vec<CellId>,
    /// Cells emitted or queued under the budgeted mode.
    budget_used: usize,
    /// Per-depth candidate-edge buffers (see `cover_polygon`).
    scratch: Vec<Vec<u32>>,
}

impl Coverer<'_> {
    /// Recurse into the four children of `cell`, deriving each child's rect
    /// from the parent rect via the curve cursor (no per-cell decode).
    fn recurse_children(
        &mut self,
        cell: CellId,
        rect: Rect,
        cursor: crate::curve::CurveCursor,
        candidates: &[u32],
        depth: usize,
    ) {
        let cx = (rect.min.x + rect.max.x) * 0.5;
        let cy = (rect.min.y + rect.max.y) * 0.5;
        for k in 0..4u8 {
            let (dx, dy) = cursor.child_quadrant(k);
            let child_rect = Rect::from_bounds(
                if dx == 0 { rect.min.x } else { cx },
                if dy == 0 { rect.min.y } else { cy },
                if dx == 0 { cx } else { rect.max.x },
                if dy == 0 { cy } else { rect.max.y },
            );
            self.visit(
                cell.child(k),
                child_rect,
                cursor.child(k),
                candidates,
                depth + 1,
            );
        }
    }

    fn visit(
        &mut self,
        cell: CellId,
        rect: Rect,
        cursor: crate::curve::CurveCursor,
        candidates: &[u32],
        depth: usize,
    ) {
        // Edges still relevant for this cell, filtered into this depth's
        // scratch buffer.
        let mut local = std::mem::take(&mut self.scratch[depth]);
        local.clear();
        for &ei in candidates {
            if edge_touches_rect(&self.edges[ei as usize], &rect) {
                local.push(ei);
            }
        }

        if local.is_empty() {
            // No outline in this cell: uniformly inside or outside. The
            // center cannot lie on the outline (that would require an edge
            // inside the rect), so the fast ray cast suffices.
            if self.poly.contains_point_fast(rect.center()) {
                if cell.level() < self.opts.min_level {
                    self.recurse_children(cell, rect, cursor, &local, depth);
                } else {
                    self.out.push(cell);
                }
            }
            self.scratch[depth] = local;
            return;
        }

        // Boundary cell.
        if cell.level() >= self.opts.max_level {
            self.out.push(cell);
            self.scratch[depth] = local;
            return;
        }
        if let Some(budget) = self.opts.max_cells {
            if self.budget_used + 4 > budget {
                self.out.push(cell);
                self.scratch[depth] = local;
                return;
            }
            self.budget_used += 3; // one cell replaced by up to four
        }
        let local_owned = local;
        self.recurse_children(cell, rect, cursor, &local_owned, depth);
        self.scratch[depth] = local_owned;
    }
}

/// Covering of an axis-aligned rectangle (rectangles are constrained
/// polygons; the evaluation's Figure 15 queries rectangles this way).
pub fn cover_rect(grid: &Grid, rect: &Rect, opts: CovererOptions) -> CellUnion {
    cover_polygon(grid, &Polygon::rectangle(*rect), opts)
}

/// Statistics about a covering, used in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveringStats {
    /// Total cells in the covering.
    pub cells: usize,
    /// Cells at exactly `max_level` (boundary cells).
    pub max_level_cells: usize,
    /// Coarsest level present.
    pub min_level: u8,
}

/// Summarize a covering.
pub fn covering_stats(union: &CellUnion, max_level: u8) -> CoveringStats {
    let mut min_level = MAX_LEVEL;
    let mut max_level_cells = 0usize;
    for c in union.iter() {
        min_level = min_level.min(c.level());
        if c.level() == max_level {
            max_level_cells += 1;
        }
    }
    CoveringStats {
        cells: union.len(),
        max_level_cells,
        min_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_geom::Point;

    fn grid() -> Grid {
        Grid::hilbert(Rect::from_bounds(0.0, 0.0, 1024.0, 1024.0))
    }

    fn diamond(cx: f64, cy: f64, r: f64) -> Polygon {
        Polygon::new(vec![
            Point::new(cx, cy - r),
            Point::new(cx + r, cy),
            Point::new(cx, cy + r),
            Point::new(cx - r, cy),
        ])
    }

    #[test]
    fn covering_is_superset_of_polygon() {
        let g = grid();
        let poly = diamond(500.0, 500.0, 180.0);
        let cov = cover_polygon(&g, &poly, CovererOptions::at_level(8));
        assert!(!cov.is_empty());
        // Every sampled interior point is covered.
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(330.0 + i as f64 * 8.6, 330.0 + j as f64 * 8.6);
                if poly.contains_point(p) {
                    assert!(cov.contains(g.leaf_for_point(p)), "{p:?} uncovered");
                }
            }
        }
    }

    #[test]
    fn covering_error_is_bounded_by_cell_diagonal() {
        // §3.2: any point of the covering is within √(ε₁²+ε₂²) of the
        // polygon, where ε are the block-level cell side lengths. Note the
        // *cells* of the covering may be coarser (normalization merges
        // complete sibling quartets) — the bound is on the covered REGION.
        let g = grid();
        let poly = diamond(500.0, 500.0, 180.0);
        let level = 8;
        let cov = cover_polygon(&g, &poly, CovererOptions::at_level(level));
        let bound = g.cell_diagonal(level);
        for cell in cov.iter() {
            let r = g.cell_rect(cell);
            assert_ne!(
                classify_rect(&poly, &r),
                RectRelation::Disjoint,
                "covering contains a disjoint cell {cell:?}"
            );
            // Sample points inside the cell rect: each is either inside the
            // polygon or within the error bound of its outline.
            for i in 0..4 {
                for j in 0..4 {
                    let p = Point::new(
                        r.min.x + r.width() * (i as f64 + 0.5) / 4.0,
                        r.min.y + r.height() * (j as f64 + 0.5) / 4.0,
                    );
                    let d = gb_geom::interior::signed_distance(&poly, p);
                    assert!(
                        d >= -bound * 1.0001,
                        "point {p:?} of covering cell {cell:?} is {} outside (> bound {bound})",
                        -d
                    );
                }
            }
        }
    }

    #[test]
    fn interior_cells_may_be_coarse() {
        let g = grid();
        let poly = diamond(500.0, 500.0, 300.0);
        let cov = cover_polygon(&g, &poly, CovererOptions::at_level(10));
        let stats = covering_stats(&cov, 10);
        assert!(
            stats.min_level < 10,
            "expected coarse interior cells, got {stats:?}"
        );
        assert!(stats.max_level_cells > 0, "boundary must be at max level");
    }

    #[test]
    fn min_level_is_respected() {
        let g = grid();
        let poly = diamond(500.0, 500.0, 300.0);
        let opts = CovererOptions {
            max_level: 10,
            min_level: 7,
            max_cells: None,
        };
        let cov = cover_polygon(&g, &poly, opts);
        for c in cov.iter() {
            assert!(c.level() >= 7, "cell {c:?} coarser than min_level allows");
        }
    }

    #[test]
    fn budgeted_covering_respects_cap() {
        let g = grid();
        let poly = diamond(500.0, 500.0, 300.0);
        let opts = CovererOptions {
            max_level: 14,
            min_level: 0,
            max_cells: Some(32),
        };
        let cov = cover_polygon(&g, &poly, opts);
        assert!(cov.len() <= 32, "got {} cells", cov.len());
        assert!(!cov.is_empty());
    }

    #[test]
    fn polygon_outside_domain_is_empty() {
        let g = grid();
        let poly = diamond(5000.0, 5000.0, 10.0);
        let cov = cover_polygon(&g, &poly, CovererOptions::at_level(10));
        assert!(cov.is_empty());
    }

    #[test]
    fn rect_covering_matches_polygon_covering() {
        let g = grid();
        let r = Rect::from_bounds(100.0, 100.0, 300.0, 250.0);
        let a = cover_rect(&g, &r, CovererOptions::at_level(9));
        let b = cover_polygon(&g, &Polygon::rectangle(r), CovererOptions::at_level(9));
        assert_eq!(a, b);
    }

    #[test]
    fn finer_levels_reduce_covered_area() {
        let g = grid();
        let poly = diamond(500.0, 500.0, 200.0);
        let coarse = cover_polygon(&g, &poly, CovererOptions::at_level(6));
        let fine = cover_polygon(&g, &poly, CovererOptions::at_level(10));
        // Finer covering hugs the polygon: strictly fewer covered leaves.
        assert!(fine.leaf_count() < coarse.leaf_count());
    }

    #[test]
    fn covering_works_on_morton_grid() {
        let g = Grid::new(
            Rect::from_bounds(0.0, 0.0, 1024.0, 1024.0),
            crate::curve::CurveKind::Morton,
        );
        let poly = diamond(500.0, 500.0, 120.0);
        let cov = cover_polygon(&g, &poly, CovererOptions::at_level(8));
        assert!(!cov.is_empty());
        let center = g.leaf_for_point(Point::new(500.0, 500.0));
        assert!(cov.contains(center));
    }
}
