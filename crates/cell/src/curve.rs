//! Space-filling curve enumerations of the quadtree grid.
//!
//! §3.1: "all cells at a given level can be enumerated using an
//! order-preserving space-filling curve". The paper (via S2) uses the
//! Hilbert curve; we implement Hilbert as the default and Morton (Z-order)
//! as an ablation alternative — both are *hierarchical*: the first `2ℓ` bits
//! of a leaf's index identify the enclosing level-`ℓ` cell, which is the
//! property all the prefix bit-arithmetic in [`crate::id`] relies on.

/// Which space-filling curve enumerates the grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CurveKind {
    /// Hilbert curve: best locality, matches the paper / S2.
    #[default]
    Hilbert,
    /// Morton (Z-order) curve: cheaper conversion, worse locality.
    Morton,
}

impl CurveKind {
    /// Map grid coordinates `(x, y)` (each `< 2^order`) to the curve index.
    #[inline]
    pub fn xy_to_d(self, order: u8, x: u32, y: u32) -> u64 {
        debug_assert!((1..=31).contains(&order));
        debug_assert!(u64::from(x) < (1u64 << order) && u64::from(y) < (1u64 << order));
        match self {
            CurveKind::Hilbert => hilbert_xy_to_d(order, x, y),
            CurveKind::Morton => morton_xy_to_d(x, y),
        }
    }

    /// Inverse of [`CurveKind::xy_to_d`].
    #[inline]
    pub fn d_to_xy(self, order: u8, d: u64) -> (u32, u32) {
        debug_assert!((1..=31).contains(&order));
        debug_assert!(d < (1u64 << (2 * order as u64)));
        match self {
            CurveKind::Hilbert => hilbert_d_to_xy(order, d),
            CurveKind::Morton => morton_d_to_xy(order, d),
        }
    }
}

/// Hilbert index of grid point `(x, y)` at the given order.
///
/// Classic iterative algorithm; the quadrant flip is a full-width XOR with
/// `2^order - 1`, which flips every lower bit and therefore keeps all
/// subsequent (lower) bit reads consistent.
fn hilbert_xy_to_d(order: u8, mut x: u32, mut y: u32) -> u64 {
    let n_mask: u32 = if order == 32 {
        u32::MAX
    } else {
        (1u32 << order) - 1
    };
    let mut d: u64 = 0;
    let mut s: u32 = 1 << (order - 1);
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-curve is oriented canonically.
        if ry == 0 {
            if rx == 1 {
                x = !x & n_mask;
                y = !y & n_mask;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Grid point of Hilbert index `d` at the given order.
fn hilbert_d_to_xy(order: u8, d: u64) -> (u32, u32) {
    let mut x: u32 = 0;
    let mut y: u32 = 0;
    let mut t = d;
    let mut s: u32 = 1;
    while s < (1u32 << order) {
        let rx = (1 & (t >> 1)) as u32;
        let ry = (t ^ u64::from(rx)) as u32 & 1;
        // Rotate within the current sub-square of side `s`; x and y only
        // hold bits below `s` here so the flip cannot underflow.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t >>= 2;
        s <<= 1;
    }
    (x, y)
}

/// Morton index: interleave the bits of x (even positions) and y (odd).
fn morton_xy_to_d(x: u32, y: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

fn morton_d_to_xy(_order: u8, d: u64) -> (u32, u32) {
    (compact_bits(d), compact_bits(d >> 1))
}

/// The 2-bit quadrant pair `(x_bit, y_bit)` for curve index `q` in the
/// canonical (untransformed) Hilbert frame: index 0 → (0,0), 1 → (0,1),
/// 2 → (1,1), 3 → (1,0). (Inverse of `q = (3·rx) ^ ry`.)
const HILBERT_INV: [(u8, u8); 4] = [(0, 0), (0, 1), (1, 1), (1, 0)];

/// A signed coordinate permutation: optionally swap x/y, then complement
/// either axis. The four orientations of the 2-D Hilbert curve live here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SignedPerm {
    swap: bool,
    cx: bool,
    cy: bool,
}

impl SignedPerm {
    const IDENTITY: SignedPerm = SignedPerm {
        swap: false,
        cx: false,
        cy: false,
    };
    /// `(x, y) → (y, x)` — applied after descending into ry == 0, rx == 0.
    const SWAP: SignedPerm = SignedPerm {
        swap: true,
        cx: false,
        cy: false,
    };
    /// `(x, y) → (!y, !x)` — applied after descending into ry == 0, rx == 1.
    const NEG_SWAP: SignedPerm = SignedPerm {
        swap: true,
        cx: true,
        cy: true,
    };

    /// Map raw quadrant bits to curve-frame bits (inverse of
    /// [`SignedPerm::apply_inv`]; exercised by the roundtrip tests).
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    fn apply(self, x: u8, y: u8) -> (u8, u8) {
        let (u, v) = if self.swap { (y, x) } else { (x, y) };
        (u ^ self.cx as u8, v ^ self.cy as u8)
    }

    /// Map curve-frame bits back to raw quadrant bits.
    #[inline]
    fn apply_inv(self, rx: u8, ry: u8) -> (u8, u8) {
        let u = rx ^ self.cx as u8;
        let v = ry ^ self.cy as u8;
        if self.swap {
            (v, u)
        } else {
            (u, v)
        }
    }

    /// `self ∘ other` (apply `other` first).
    #[inline]
    fn compose(self, other: SignedPerm) -> SignedPerm {
        // Derive by tracing one basis evaluation; verified by tests against
        // the bitwise Hilbert decode.
        if self.swap {
            SignedPerm {
                swap: !other.swap,
                cx: other.cy ^ self.cx,
                cy: other.cx ^ self.cy,
            }
        } else {
            SignedPerm {
                swap: other.swap,
                cx: other.cx ^ self.cx,
                cy: other.cy ^ self.cy,
            }
        }
    }
}

/// Incremental curve-orientation state for top-down traversals.
///
/// Recursing a quadtree while calling [`CurveKind::d_to_xy`] per cell costs
/// O(level) each; carrying a `CurveCursor` instead makes each child's
/// quadrant an O(1) table lookup — the trick behind the region coverer's
/// speed (S2 uses the same lookup-table approach).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurveCursor {
    kind: CurveKind,
    perm: SignedPerm,
}

impl CurveCursor {
    /// Cursor at the root cell.
    pub fn root(kind: CurveKind) -> CurveCursor {
        CurveCursor {
            kind,
            perm: SignedPerm::IDENTITY,
        }
    }

    /// Quadrant `(dx, dy)` (each 0/1) of the child at curve index `k`.
    #[inline]
    pub fn child_quadrant(self, k: u8) -> (u8, u8) {
        debug_assert!(k < 4);
        match self.kind {
            CurveKind::Morton => (k & 1, (k >> 1) & 1),
            CurveKind::Hilbert => {
                let (rx, ry) = HILBERT_INV[k as usize];
                self.perm.apply_inv(rx, ry)
            }
        }
    }

    /// Cursor for the child at curve index `k`.
    #[inline]
    pub fn child(self, k: u8) -> CurveCursor {
        match self.kind {
            CurveKind::Morton => self,
            CurveKind::Hilbert => {
                let (rx, ry) = HILBERT_INV[k as usize];
                let rot = if ry == 0 {
                    if rx == 1 {
                        SignedPerm::NEG_SWAP
                    } else {
                        SignedPerm::SWAP
                    }
                } else {
                    SignedPerm::IDENTITY
                };
                CurveCursor {
                    kind: self.kind,
                    perm: rot.compose(self.perm),
                }
            }
        }
    }

    /// Cursor positioned at an arbitrary cell, by walking the child
    /// positions from the root (O(level), once per traversal entry point).
    pub fn at(kind: CurveKind, child_positions: impl Iterator<Item = u8>) -> CurveCursor {
        let mut cur = CurveCursor::root(kind);
        for k in child_positions {
            cur = cur.child(k);
        }
        cur
    }
}

/// Spread the 32 bits of `v` to the even bit positions of a u64.
#[inline]
fn spread_bits(v: u32) -> u64 {
    let mut v = u64::from(v);
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread_bits`]: gather the even bit positions.
#[inline]
fn compact_bits(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_order1_square() {
        // The order-1 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
        assert_eq!(hilbert_xy_to_d(1, 0, 0), 0);
        assert_eq!(hilbert_xy_to_d(1, 0, 1), 1);
        assert_eq!(hilbert_xy_to_d(1, 1, 1), 2);
        assert_eq!(hilbert_xy_to_d(1, 1, 0), 3);
    }

    #[test]
    fn hilbert_roundtrip_exhaustive_order4() {
        for d in 0..(1u64 << 8) {
            let (x, y) = hilbert_d_to_xy(4, d);
            assert_eq!(hilbert_xy_to_d(4, x, y), d);
        }
    }

    #[test]
    fn hilbert_adjacency_order5() {
        // Consecutive Hilbert indices are 4-neighbours on the grid — the
        // locality property that makes range scans spatial scans.
        for d in 0..(1u64 << 10) - 1 {
            let (x0, y0) = hilbert_d_to_xy(5, d);
            let (x1, y1) = hilbert_d_to_xy(5, d + 1);
            let manhattan = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(manhattan, 1, "d={d}: ({x0},{y0}) -> ({x1},{y1})");
        }
    }

    #[test]
    fn hilbert_hierarchical_prefix() {
        // Parent cell index = child index >> 2, with coordinates halved.
        for order in 2..=8u8 {
            for d in (0..(1u64 << (2 * order))).step_by(97) {
                let (x, y) = hilbert_d_to_xy(order, d);
                let parent_d = hilbert_xy_to_d(order - 1, x >> 1, y >> 1);
                assert_eq!(parent_d, d >> 2, "order={order} d={d}");
            }
        }
    }

    #[test]
    fn morton_roundtrip_exhaustive_order4() {
        for d in 0..(1u64 << 8) {
            let (x, y) = morton_d_to_xy(4, d);
            assert_eq!(morton_xy_to_d(x, y), d);
        }
    }

    #[test]
    fn morton_known_values() {
        assert_eq!(morton_xy_to_d(0, 0), 0);
        assert_eq!(morton_xy_to_d(1, 0), 1);
        assert_eq!(morton_xy_to_d(0, 1), 2);
        assert_eq!(morton_xy_to_d(1, 1), 3);
        assert_eq!(morton_xy_to_d(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn morton_hierarchical_prefix() {
        for d in (0..(1u64 << 16)).step_by(31) {
            let (x, y) = morton_d_to_xy(8, d);
            assert_eq!(morton_xy_to_d(x >> 1, y >> 1), d >> 2);
        }
    }

    #[test]
    fn curves_roundtrip_at_full_order() {
        // Order 30 (the grid's maximum) round-trips at the extremes.
        let max = (1u32 << 30) - 1;
        for curve in [CurveKind::Hilbert, CurveKind::Morton] {
            for (x, y) in [(0, 0), (max, 0), (0, max), (max, max), (12345, 999_999)] {
                let d = curve.xy_to_d(30, x, y);
                assert_eq!(curve.d_to_xy(30, d), (x, y), "{curve:?} ({x},{y})");
            }
        }
    }

    #[test]
    fn cursor_descent_matches_bitwise_decode() {
        // Descend 8 levels along pseudo-random curve indices and check the
        // accumulated (i, j) equals the direct d_to_xy decode.
        for kind in [CurveKind::Hilbert, CurveKind::Morton] {
            for seed in 0..64u64 {
                let mut cur = CurveCursor::root(kind);
                let mut d: u64 = 0;
                let (mut i, mut j) = (0u32, 0u32);
                let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..8 {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = ((s >> 33) & 3) as u8;
                    let (dx, dy) = cur.child_quadrant(k);
                    i = (i << 1) | u32::from(dx);
                    j = (j << 1) | u32::from(dy);
                    d = (d << 2) | u64::from(k);
                    cur = cur.child(k);
                }
                assert_eq!(kind.d_to_xy(8, d), (i, j), "{kind:?} seed {seed}");
            }
        }
    }

    #[test]
    fn cursor_at_matches_root_walk() {
        let cur1 = CurveCursor::at(CurveKind::Hilbert, [1u8, 3, 0, 2].into_iter());
        let mut cur2 = CurveCursor::root(CurveKind::Hilbert);
        for k in [1u8, 3, 0, 2] {
            cur2 = cur2.child(k);
        }
        assert_eq!(cur1, cur2);
    }

    #[test]
    fn signed_perm_inverse_roundtrip() {
        for swap in [false, true] {
            for cx in [false, true] {
                for cy in [false, true] {
                    let p = SignedPerm { swap, cx, cy };
                    for x in 0..2u8 {
                        for y in 0..2u8 {
                            let (rx, ry) = p.apply(x, y);
                            assert_eq!(p.apply_inv(rx, ry), (x, y));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn curve_indices_are_dense() {
        // Every index in [0, 4^order) is produced exactly once (order 3).
        for curve in [CurveKind::Hilbert, CurveKind::Morton] {
            let mut seen = [false; 64];
            for x in 0..8u32 {
                for y in 0..8u32 {
                    let d = curve.xy_to_d(3, x, y) as usize;
                    assert!(!seen[d], "{curve:?} duplicate index {d}");
                    seen[d] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
