//! 64-bit hierarchical cell identifiers (S2-style encoding).
//!
//! §3.1: each quadtree subdivision is encoded with two bits; concatenating
//! the encodings of levels 0..n uniquely identifies a cell, children share
//! their parent's prefix, and containment tests reduce to bitwise
//! operations. We use the same sentinel-bit trick as Google S2:
//!
//! ```text
//! leaf  (level 30): [60 position bits] 1
//! level ℓ cell    : [2ℓ position bits] 1 [0 … 0]
//! ```
//!
//! i.e. `id = (truncated_position << 1) | sentinel`, where the sentinel `1`
//! sits at bit `2·(30−ℓ)`. This makes `level`, `parent`, `children`,
//! `range_min`/`range_max` (first/last descendant leaf), and `contains` all
//! O(1) bit arithmetic, and — crucially for the paper's storage layout —
//! sorting cells of any level by raw id sorts them along the space-filling
//! curve with ancestors adjacent to their descendants.

/// Deepest subdivision level. 30 levels × 2 bits + sentinel = 61 bits.
pub const MAX_LEVEL: u8 = 30;

/// A cell in the hierarchical grid decomposition, at any level 0..=30.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(u64);

impl CellId {
    /// The level-0 cell covering the whole domain.
    pub const ROOT: CellId = CellId(1 << (2 * MAX_LEVEL as u64));

    /// Construct from a raw id, validating the encoding.
    #[inline]
    pub fn from_raw(raw: u64) -> CellId {
        let c = CellId(raw);
        assert!(c.is_valid(), "invalid cell id {raw:#x}");
        c
    }

    /// Construct from a raw id without panicking: `None` for malformed
    /// bit patterns. This is the entry point for untrusted input (e.g.
    /// snapshot files), where [`CellId::from_raw`]'s assert would turn
    /// corruption into a crash.
    #[inline]
    pub fn try_from_raw(raw: u64) -> Option<CellId> {
        let c = CellId(raw);
        c.is_valid().then_some(c)
    }

    /// The raw 64-bit key (what GeoBlocks sorts and stores).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// A leaf cell from its 60-bit space-filling-curve position.
    #[inline]
    pub fn from_leaf_pos(pos: u64) -> CellId {
        debug_assert!(pos < (1u64 << 60));
        CellId((pos << 1) | 1)
    }

    /// A cell at `level` from a leaf-resolution curve position (the position
    /// is truncated to the level's granularity).
    #[inline]
    pub fn from_pos_level(pos: u64, level: u8) -> CellId {
        debug_assert!(level <= MAX_LEVEL);
        CellId::from_leaf_pos(pos).parent_at(level)
    }

    /// True if the bit pattern is a well-formed cell id.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0 && self.0 < (1u64 << 61) && self.0.trailing_zeros().is_multiple_of(2)
    }

    /// Lowest set bit — the sentinel marking this cell's level.
    #[inline]
    fn lsb(self) -> u64 {
        self.0 & self.0.wrapping_neg()
    }

    /// Sentinel bit value for a given level.
    #[inline]
    fn lsb_for(level: u8) -> u64 {
        1u64 << (2 * (MAX_LEVEL - level) as u64)
    }

    /// Subdivision level of this cell (0 = root, 30 = leaf).
    #[inline]
    pub fn level(self) -> u8 {
        debug_assert!(self.is_valid());
        MAX_LEVEL - (self.0.trailing_zeros() / 2) as u8
    }

    /// True for cells at [`MAX_LEVEL`].
    #[inline]
    pub fn is_leaf(self) -> bool {
        self.0 & 1 == 1
    }

    /// The 60-bit curve position of this cell's first leaf.
    #[inline]
    pub fn leaf_pos(self) -> u64 {
        self.range_min().0 >> 1
    }

    /// Curve position at this cell's own level (top `2·level` bits).
    #[inline]
    pub fn pos_at_own_level(self) -> u64 {
        self.leaf_pos() >> (2 * (MAX_LEVEL - self.level()) as u64)
    }

    /// First descendant leaf (as a cell id). `range_min()..=range_max()`
    /// spans every descendant of this cell, at every level.
    #[inline]
    pub fn range_min(self) -> CellId {
        CellId(self.0 - (self.lsb() - 1))
    }

    /// Last descendant leaf (as a cell id).
    #[inline]
    pub fn range_max(self) -> CellId {
        CellId(self.0 + (self.lsb() - 1))
    }

    /// Prefix containment: true if `other` (any level) is `self` or a
    /// descendant of `self`. Constant-time — the §3.1 bitwise containment.
    #[inline]
    pub fn contains(self, other: CellId) -> bool {
        other.0 >= self.range_min().0 && other.0 <= self.range_max().0
    }

    /// True if the two cells share any area (one contains the other).
    #[inline]
    pub fn intersects(self, other: CellId) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Ancestor at `level` (must be ≤ this cell's level).
    #[inline]
    pub fn parent_at(self, level: u8) -> CellId {
        debug_assert!(level <= self.level());
        let new_lsb = Self::lsb_for(level);
        CellId((self.0 & new_lsb.wrapping_neg()) | new_lsb)
    }

    /// Immediate parent. Panics (debug) on the root.
    #[inline]
    pub fn parent(self) -> CellId {
        debug_assert!(self.level() > 0, "root has no parent");
        self.parent_at(self.level() - 1)
    }

    /// Child `k` (0..4) at the next level.
    #[inline]
    pub fn child(self, k: u8) -> CellId {
        debug_assert!(k < 4);
        debug_assert!(!self.is_leaf());
        let new_lsb = self.lsb() >> 2;
        CellId(self.0 - self.lsb() + (2 * u64::from(k) + 1) * new_lsb)
    }

    /// All four children at the next level.
    #[inline]
    pub fn children(self) -> [CellId; 4] {
        [self.child(0), self.child(1), self.child(2), self.child(3)]
    }

    /// Which child slot (0..4) this cell's ancestor occupies at `level`
    /// (1 ≤ level ≤ self.level()).
    #[inline]
    pub fn child_position(self, level: u8) -> u8 {
        debug_assert!(level >= 1 && level <= self.level());
        ((self.0 >> (2 * (MAX_LEVEL - level) as u64 + 1)) & 3) as u8
    }

    /// First descendant cell at `level` (for iteration with
    /// [`CellId::child_end`] / [`CellId::next`]).
    #[inline]
    pub fn child_begin(self, level: u8) -> CellId {
        debug_assert!(level >= self.level());
        CellId(self.0 - self.lsb() + Self::lsb_for(level))
    }

    /// One-past-the-last descendant cell at `level`.
    #[inline]
    pub fn child_end(self, level: u8) -> CellId {
        debug_assert!(level >= self.level());
        CellId(self.0 + self.lsb() + Self::lsb_for(level))
    }

    /// Next cell at the same level along the curve (may overflow past the
    /// domain end; compare against a `child_end` bound).
    #[inline]
    pub fn next(self) -> CellId {
        CellId(self.0.wrapping_add(self.lsb() << 1))
    }

    /// Previous cell at the same level along the curve.
    #[inline]
    pub fn prev(self) -> CellId {
        CellId(self.0.wrapping_sub(self.lsb() << 1))
    }

    /// Iterate the descendants of `self` at `level` in curve order.
    pub fn children_at(self, level: u8) -> impl Iterator<Item = CellId> {
        let end = self.child_end(level);
        let mut cur = self.child_begin(level);
        std::iter::from_fn(move || {
            if cur == end {
                None
            } else {
                let out = cur;
                cur = cur.next();
                Some(out)
            }
        })
    }

    /// Number of descendants at `level` (4^(level − self.level())).
    #[inline]
    pub fn num_children_at(self, level: u8) -> u64 {
        debug_assert!(level >= self.level());
        1u64 << (2 * (level - self.level()) as u64)
    }

    /// Raw id of the level-`level` ancestor of a raw key, as pure bit
    /// arithmetic — the hot-loop variant of [`CellId::parent_at`] for code
    /// that groups *sorted key arrays* by ancestor (the build sweep, the
    /// aggregate-pyramid folds) without round-tripping through validated
    /// `CellId`s. `raw` must encode a cell at level ≥ `level`.
    #[inline]
    pub fn raw_parent_at(raw: u64, level: u8) -> u64 {
        let lsb = Self::lsb_for(level);
        (raw & lsb.wrapping_neg()) | lsb
    }

    /// Deepest common ancestor of two cells.
    pub fn common_ancestor(self, other: CellId) -> CellId {
        let mut bits = self.lsb().max(other.lsb());
        let x = self.0 ^ other.0;
        // The ancestor with sentinel `bits` is shared iff the ids agree on
        // every bit strictly above the sentinel position, i.e. x < 2·bits.
        while (bits << 1) <= x {
            bits <<= 2;
        }
        debug_assert!(bits <= CellId::ROOT.lsb());
        CellId((self.0 & bits.wrapping_neg()) | bits)
    }
}

impl std::fmt::Debug for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_valid() {
            write!(f, "Cell(L{}, {:#x})", self.level(), self.0)
        } else {
            write!(f, "Cell(INVALID {:#x})", self.0)
        }
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}:{:x}", self.level(), self.pos_at_own_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_from_raw_rejects_malformed_ids() {
        assert_eq!(CellId::try_from_raw(0), None);
        assert_eq!(CellId::try_from_raw(1u64 << 62), None);
        assert_eq!(CellId::try_from_raw(0b100), Some(CellId(0b100)));
        let leaf = CellId::from_leaf_pos(12345);
        assert_eq!(CellId::try_from_raw(leaf.raw()), Some(leaf));
        // Sentinel at an odd bit position is not a valid encoding.
        assert_eq!(CellId::try_from_raw(0b10), None);
    }

    #[test]
    fn root_properties() {
        assert!(CellId::ROOT.is_valid());
        assert_eq!(CellId::ROOT.level(), 0);
        assert!(!CellId::ROOT.is_leaf());
        assert_eq!(CellId::ROOT.range_min().0, 1);
        assert_eq!(CellId::ROOT.range_max().0, (1u64 << 61) - 1);
    }

    #[test]
    fn leaf_roundtrip() {
        for pos in [0u64, 1, 12345, (1 << 60) - 1] {
            let leaf = CellId::from_leaf_pos(pos);
            assert!(leaf.is_valid());
            assert!(leaf.is_leaf());
            assert_eq!(leaf.level(), MAX_LEVEL);
            assert_eq!(leaf.leaf_pos(), pos);
        }
    }

    #[test]
    fn validity() {
        assert!(!CellId(0).is_valid());
        assert!(!CellId(2).is_valid()); // sentinel at odd position
        assert!(!CellId(1 << 62).is_valid()); // beyond the domain
        assert!(CellId(1).is_valid());
        assert!(CellId(4).is_valid());
    }

    #[test]
    fn parent_child_inverse() {
        let leaf = CellId::from_leaf_pos(0xDEAD_BEEF_CAFE);
        for level in (1..=MAX_LEVEL).rev() {
            let cell = leaf.parent_at(level);
            let parent = cell.parent();
            assert_eq!(parent.level(), level - 1);
            assert!(parent.contains(cell));
            let k = cell.child_position(level);
            assert_eq!(parent.child(k), cell, "level {level}");
        }
    }

    #[test]
    fn children_partition_range() {
        let cell = CellId::from_leaf_pos(123 << 40).parent_at(7);
        let kids = cell.children();
        assert_eq!(kids[0].range_min(), cell.range_min());
        assert_eq!(kids[3].range_max(), cell.range_max());
        for w in kids.windows(2) {
            assert_eq!(w[0].range_max().0 + 2, w[1].range_min().0);
        }
        for k in kids {
            assert_eq!(k.level(), 8);
            assert!(cell.contains(k));
            assert!(!k.contains(cell));
        }
    }

    #[test]
    fn containment_is_prefix_based() {
        let leaf = CellId::from_leaf_pos(0xABCD_EF01_2345);
        let a = leaf.parent_at(10);
        let b = leaf.parent_at(20);
        assert!(a.contains(b));
        assert!(a.contains(leaf));
        assert!(b.contains(leaf));
        assert!(!b.contains(a));
        // A sibling subtree is not contained.
        let sibling = b.next();
        assert!(!b.contains(sibling));
        assert!(!sibling.contains(b));
    }

    #[test]
    fn child_iteration_matches_count() {
        let cell = CellId::from_leaf_pos(42).parent_at(26);
        let at_28: Vec<_> = cell.children_at(28).collect();
        assert_eq!(at_28.len(), 16);
        assert_eq!(cell.num_children_at(28), 16);
        for w in at_28.windows(2) {
            assert!(w[0] < w[1], "curve order preserved");
        }
        assert!(at_28.iter().all(|c| cell.contains(*c) && c.level() == 28));
        // Self-iteration at own level yields exactly self.
        let own: Vec<_> = cell.children_at(26).collect();
        assert_eq!(own, vec![cell]);
    }

    #[test]
    fn next_prev_roundtrip() {
        let cell = CellId::from_leaf_pos(999).parent_at(15);
        assert_eq!(cell.next().prev(), cell);
        assert_eq!(cell.next().level(), 15);
        assert!(cell.next() > cell);
    }

    #[test]
    fn common_ancestor_cases() {
        let leaf = CellId::from_leaf_pos(0x1234_5678_9ABC);
        let a = leaf.parent_at(12);
        // Ancestor of itself.
        assert_eq!(a.common_ancestor(a), a);
        // Ancestor/descendant pair → the ancestor.
        assert_eq!(a.common_ancestor(leaf), a);
        assert_eq!(leaf.common_ancestor(a), a);
        // Two children of one parent → the parent.
        let p = leaf.parent_at(9);
        let c0 = p.child(0);
        let c3 = p.child(3);
        assert_eq!(c0.common_ancestor(c3), p);
        // Far-apart cells → an ancestor that contains both.
        let far = CellId::from_leaf_pos(0x00F0_0000_0000_0000);
        let anc = leaf.common_ancestor(far);
        assert!(anc.contains(leaf) && anc.contains(far));
        // And it is the *deepest* such ancestor.
        if anc.level() > 0 {
            let too_deep_l = anc.level() + 1;
            if too_deep_l <= leaf.level() && too_deep_l <= far.level() {
                assert_ne!(leaf.parent_at(too_deep_l), far.parent_at(too_deep_l));
            }
        }
    }

    #[test]
    fn raw_parent_at_matches_parent_at() {
        for pos in [0u64, 3, 12345, 0xDEAD_BEEF, (1 << 60) - 1] {
            let leaf = CellId::from_leaf_pos(pos);
            for level in 0..=MAX_LEVEL {
                assert_eq!(
                    CellId::raw_parent_at(leaf.raw(), level),
                    leaf.parent_at(level).raw(),
                    "pos {pos} level {level}"
                );
                let mid = leaf.parent_at(15.max(level));
                assert_eq!(
                    CellId::raw_parent_at(mid.raw(), level.min(15)),
                    mid.parent_at(level.min(15)).raw()
                );
            }
        }
    }

    #[test]
    fn raw_order_is_curve_order_with_ancestors_between() {
        // For cells at the same level, raw-id order == curve order.
        let base = CellId::from_leaf_pos(500 << 20).parent_at(18);
        let next = base.next();
        assert!(base.raw() < next.raw());
        // An ancestor's id lies inside its own leaf range and outside a
        // sibling's.
        let parent = base.parent();
        assert!(parent.range_min().raw() <= base.raw() && base.raw() <= parent.range_max().raw());
    }

    #[test]
    fn display_and_debug() {
        let c = CellId::from_leaf_pos(3).parent_at(29);
        assert_eq!(format!("{c}"), "L29:0");
        assert!(format!("{c:?}").contains("L29"));
    }

    #[test]
    #[should_panic(expected = "invalid cell id")]
    fn from_raw_rejects_invalid() {
        CellId::from_raw(2);
    }
}
