//! Hierarchical quadtree cell grid with S2-style 64-bit ids — the spatial
//! decomposition substrate of the GeoBlocks reproduction (§3.1–§3.2).
//!
//! The paper builds on Google S2: a recursive 4-way subdivision of space
//! whose cells are enumerated by an order-preserving space-filling curve and
//! identified by 64-bit keys supporting prefix-based containment. This crate
//! re-implements that machinery over a **planar bounded domain** (see the
//! substitution table in `DESIGN.md`):
//!
//! * [`CellId`] — sentinel-encoded 64-bit cell identifiers with O(1)
//!   `level` / `parent` / `children` / `range_min..range_max` / `contains`,
//! * [`CurveKind`] — Hilbert (default, as the paper) and Morton (ablation)
//!   enumerations, both hierarchical,
//! * [`Grid`] — the world-rectangle ↔ cell mapping, per-level cell sizes,
//!   and the error-bound helper [`Grid::level_for_error`],
//! * [`CellUnion`] — normalized sorted cell sets,
//! * [`cover_polygon`] — the region coverer producing **error-bounded**
//!   polygon coverings (boundary cells at the block level, interior cells
//!   possibly coarse), plus a budgeted approximate mode.

pub mod cover;
pub mod curve;
pub mod grid;
pub mod id;
pub mod polyhash;
pub mod union;

pub use cover::{cover_polygon, cover_rect, covering_stats, CovererOptions, CoveringStats};
pub use curve::{CurveCursor, CurveKind};
pub use grid::Grid;
pub use id::{CellId, MAX_LEVEL};
pub use polyhash::{cover_key_from_bits, normalized_vertex_bits, polygon_cover_key};
pub use union::CellUnion;
