//! Sorted, normalized sets of cells (the output of the coverer).

use crate::id::CellId;

/// A set of cells, kept sorted by raw id.
///
/// After [`CellUnion::normalize`], cells are pairwise disjoint (no cell
/// contains another) and runs of four complete siblings are merged into
/// their parent, so the union is the canonical minimal representation of
/// the covered region.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellUnion {
    cells: Vec<CellId>,
}

impl CellUnion {
    /// An empty union.
    pub fn new() -> Self {
        CellUnion::default()
    }

    /// Build from arbitrary cells, normalizing.
    pub fn from_cells(cells: Vec<CellId>) -> Self {
        CellUnion::from_cells_with_floor(cells, 0)
    }

    /// Build from arbitrary cells, normalizing with a sibling-merge floor
    /// (see [`CellUnion::normalize_with_floor`]).
    pub fn from_cells_with_floor(cells: Vec<CellId>, merge_floor: u8) -> Self {
        let mut u = CellUnion { cells };
        u.normalize_with_floor(merge_floor);
        u
    }

    /// The cells, sorted ascending by raw id.
    #[inline]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate the cells in curve order.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells.iter().copied()
    }

    /// Sort, deduplicate, drop contained cells, and merge complete sibling
    /// quartets into parents (repeatedly).
    pub fn normalize(&mut self) {
        self.normalize_with_floor(0);
    }

    /// Like [`CellUnion::normalize`], but sibling quartets are only merged
    /// into parents at level ≥ `merge_floor`. The coverer uses this to honor
    /// a `min_level` constraint while still canonicalizing.
    pub fn normalize_with_floor(&mut self, merge_floor: u8) {
        self.cells.sort_unstable();
        self.cells.dedup();

        let mut out: Vec<CellId> = Vec::with_capacity(self.cells.len());
        for &cell in &self.cells {
            // Raw-id order interleaves ancestors *within* their descendants
            // (the sentinel sits mid-range), so containment must be checked
            // in both directions against the emitted tail.
            if let Some(&last) = out.last() {
                if last.contains(cell) {
                    continue;
                }
            }
            // `cell` may swallow a suffix of what was already emitted: all
            // emitted ids are ≤ cell.raw(), so anything ≥ cell.range_min()
            // is contained — a contiguous suffix.
            while let Some(&last) = out.last() {
                if cell.contains(last) {
                    out.pop();
                } else {
                    break;
                }
            }
            out.push(cell);
            // Merge complete sibling groups bottom-up.
            while out.len() >= 4 {
                let n = out.len();
                let d = out[n - 1];
                if d.level() == 0 || d.level() <= merge_floor {
                    break;
                }
                let parent = d.parent();
                if out[n - 4] == parent.child(0)
                    && out[n - 3] == parent.child(1)
                    && out[n - 2] == parent.child(2)
                    && d == parent.child(3)
                {
                    out.truncate(n - 4);
                    out.push(parent);
                } else {
                    break;
                }
            }
        }
        self.cells = out;
    }

    /// True if `target` (any level) is covered by some cell of the union.
    ///
    /// O(log n) binary search over the disjoint, sorted cells.
    pub fn contains(&self, target: CellId) -> bool {
        // Find the first cell with id >= target; the covering cell (if any)
        // is that cell or its predecessor.
        let idx = self.cells.partition_point(|c| c.raw() < target.raw());
        if idx < self.cells.len() && self.cells[idx].contains(target) {
            return true;
        }
        idx > 0 && self.cells[idx - 1].contains(target)
    }

    /// Total number of leaf cells covered (area in leaf units).
    pub fn leaf_count(&self) -> u128 {
        self.cells
            .iter()
            .map(|c| 1u128 << (2 * (crate::id::MAX_LEVEL - c.level()) as u32))
            .sum()
    }
}

impl FromIterator<CellId> for CellUnion {
    fn from_iter<T: IntoIterator<Item = CellId>>(iter: T) -> Self {
        CellUnion::from_cells(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(pos: u64) -> CellId {
        CellId::from_leaf_pos(pos)
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let c1 = leaf(100).parent_at(10);
        let c2 = leaf(1 << 50).parent_at(10);
        let u = CellUnion::from_cells(vec![c2, c1, c2]);
        assert_eq!(u.cells(), &[c1, c2]);
    }

    #[test]
    fn normalize_drops_contained() {
        let parent = leaf(100).parent_at(8);
        let child = leaf(100).parent_at(12);
        let u = CellUnion::from_cells(vec![child, parent]);
        assert_eq!(u.cells(), &[parent]);
    }

    #[test]
    fn normalize_merges_complete_siblings() {
        let p = leaf(100).parent_at(9);
        let kids = p.children().to_vec();
        let u = CellUnion::from_cells(kids);
        assert_eq!(u.cells(), &[p]);
    }

    #[test]
    fn normalize_merges_recursively() {
        let gp = leaf(100).parent_at(5);
        // All 16 grandchildren collapse to the grandparent.
        let grandkids: Vec<CellId> = gp.children_at(7).collect();
        assert_eq!(grandkids.len(), 16);
        let u = CellUnion::from_cells(grandkids);
        assert_eq!(u.cells(), &[gp]);
    }

    #[test]
    fn incomplete_siblings_not_merged() {
        let p = leaf(100).parent_at(9);
        let three = vec![p.child(0), p.child(1), p.child(2)];
        let u = CellUnion::from_cells(three.clone());
        assert_eq!(u.cells(), three.as_slice());
    }

    #[test]
    fn contains_queries() {
        let a = leaf(0).parent_at(6);
        let b = leaf(1 << 55).parent_at(10);
        let u = CellUnion::from_cells(vec![a, b]);
        assert!(u.contains(a));
        assert!(u.contains(a.child(2)));
        assert!(u.contains(b.child_begin(30)));
        assert!(!u.contains(b.parent())); // coarser than member ⇒ not covered
        let elsewhere = leaf(1 << 59).parent_at(10);
        assert!(!u.contains(elsewhere));
    }

    #[test]
    fn contains_on_empty() {
        let u = CellUnion::new();
        assert!(!u.contains(CellId::ROOT));
        assert!(u.is_empty());
        assert_eq!(u.len(), 0);
    }

    #[test]
    fn leaf_count_accumulates() {
        let a = leaf(0).parent_at(29); // 4 leaves
        let far = leaf(1 << 59); // 1 leaf
        let u = CellUnion::from_cells(vec![a, far]);
        assert_eq!(u.leaf_count(), 5);
    }

    #[test]
    fn from_iterator() {
        let u: CellUnion = (0..4u8).map(|k| leaf(77).parent_at(9).child(k)).collect();
        assert_eq!(u.cells(), &[leaf(77).parent_at(9)]);
    }
}
