//! Polygon content identity: the canonical vertex form and the FNV-1a
//! content hash that key the engine's covering memo.
//!
//! A covering is a pure function of (polygon, grid, level), so a memo
//! keyed by polygon *content* never needs data-epoch invalidation. The
//! memo's contract is **bit-identity** — a memoized covering must be the
//! exact `CellUnion` a fresh `cover_polygon` call would produce — which
//! dictates how much normalization is sound:
//!
//! * **Ring rotation is normalized.** The coverer folds per-edge and
//!   per-ring predicates with order-independent boolean operations (OR
//!   over edge/rect intersection tests, XOR parity for point
//!   containment), and rotating a ring permutes the *same* ordered edge
//!   set, so every per-edge float computation is unchanged and the
//!   covering is bit-identical. Each ring is rotated to start at its
//!   lexicographically smallest vertex (by coordinate bit pattern).
//! * **Ring reversal is NOT normalized.** A reversed edge `(b, a)`
//!   evaluates the same predicates with operands swapped, which IEEE-754
//!   rounding does not guarantee to be bit-identical (e.g. the crossing
//!   abscissa `a.x + (b.x - a.x) * t` vs `b.x + (a.x - b.x) * t'`), so
//!   two windings of the same region conservatively get distinct keys.
//! * NaN coordinate payloads are canonicalized by bit pattern, i.e. not
//!   at all: two polygons are "the same" iff their coordinates are
//!   bitwise equal after rotation. `-0.0` and `0.0` hash differently for
//!   the same reason reversal is excluded — they are distinct operands.
//!
//! The 64-bit hash is only a shard/lookup key: the memo stores the full
//! canonical stream ([`normalized_vertex_bits`]) alongside each entry and
//! compares it on every hit, so a hash collision degrades to a miss, not
//! to a wrong covering.

use gb_geom::{Point, Polygon};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a stream of u64 words, folded byte-by-byte in
/// little-endian order (bit-compatible with a byte-level FNV-1a over the
/// equivalent buffer).
fn fnv1a64_words<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[inline]
fn vertex_key(p: Point) -> (u64, u64) {
    (p.x.to_bits(), p.y.to_bits())
}

/// Index of the lexicographically smallest rotation of `ring`, comparing
/// vertices by `(x.to_bits(), y.to_bits())`. O(n) typical, O(n²) worst
/// case (rings of near-identical vertices) — fine for query polygons.
fn min_rotation_start(ring: &[Point]) -> usize {
    let n = ring.len();
    let mut best = 0;
    for cand in 1..n {
        for k in 0..n {
            let a = vertex_key(ring[(cand + k) % n]);
            let b = vertex_key(ring[(best + k) % n]);
            if a < b {
                best = cand;
                break;
            }
            if a > b {
                break;
            }
        }
    }
    best
}

fn push_ring(out: &mut Vec<u64>, ring: &[Point]) {
    out.push(ring.len() as u64);
    let n = ring.len();
    if n == 0 {
        return;
    }
    let start = min_rotation_start(ring);
    for k in 0..n {
        let p = ring[(start + k) % n];
        out.push(p.x.to_bits());
        out.push(p.y.to_bits());
    }
}

/// The canonical vertex stream of `polygon`: the exterior ring rotated to
/// its smallest starting vertex, then the hole count, then each hole ring
/// (in declaration order) likewise rotated. Ring lengths are interleaved
/// as markers so structurally different polygons never alias.
pub fn normalized_vertex_bits(polygon: &Polygon) -> Vec<u64> {
    let mut out = Vec::with_capacity(2 * polygon.vertex_count() + polygon.holes().len() + 2);
    push_ring(&mut out, polygon.exterior());
    out.push(polygon.holes().len() as u64);
    for hole in polygon.holes() {
        push_ring(&mut out, hole);
    }
    out
}

/// The covering-memo key for a canonical vertex stream
/// ([`normalized_vertex_bits`]) covered at `max_level`: FNV-1a over the
/// level followed by the stream.
pub fn cover_key_from_bits(bits: &[u64], max_level: u8) -> u64 {
    fnv1a64_words(std::iter::once(u64::from(max_level)).chain(bits.iter().copied()))
}

/// The covering-memo key for `polygon` covered at `max_level`.
pub fn polygon_cover_key(polygon: &Polygon, max_level: u8) -> u64 {
    cover_key_from_bits(&normalized_vertex_bits(polygon), max_level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(pts: &[(f64, f64)]) -> Vec<Point> {
        pts.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn rotate<T: Clone>(v: &[T], by: usize) -> Vec<T> {
        let mut out = v.to_vec();
        out.rotate_left(by % v.len().max(1));
        out
    }

    #[test]
    fn rotation_invariant_key() {
        let pts = [(0.0, 0.0), (4.0, 0.0), (4.0, 3.0), (1.0, 5.0)];
        let base = Polygon::new(ring(&pts));
        let k0 = polygon_cover_key(&base, 12);
        for by in 1..pts.len() {
            let rotated = Polygon::new(rotate(&ring(&pts), by));
            assert_eq!(
                normalized_vertex_bits(&base),
                normalized_vertex_bits(&rotated)
            );
            assert_eq!(k0, polygon_cover_key(&rotated, 12));
        }
    }

    #[test]
    fn holes_rotate_independently_but_keep_order() {
        let outer = ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let h1 = ring(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0)]);
        let h2 = ring(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0)]);
        let a = Polygon::with_holes(outer.clone(), vec![h1.clone(), h2.clone()]);
        let b = Polygon::with_holes(rotate(&outer, 2), vec![rotate(&h1, 1), rotate(&h2, 2)]);
        assert_eq!(normalized_vertex_bits(&a), normalized_vertex_bits(&b));
        // Hole order is part of the identity (swapping holes is safe for
        // the coverer but we stay conservative).
        let c = Polygon::with_holes(outer, vec![h2, h1]);
        assert_ne!(normalized_vertex_bits(&a), normalized_vertex_bits(&c));
    }

    #[test]
    fn reversal_is_not_normalized() {
        let pts = ring(&[(0.0, 0.0), (4.0, 0.0), (4.0, 3.0), (1.0, 5.0)]);
        let fwd = Polygon::new(pts.clone());
        let rev = Polygon::new(pts.into_iter().rev().collect());
        assert_ne!(normalized_vertex_bits(&fwd), normalized_vertex_bits(&rev));
    }

    #[test]
    fn level_and_shape_change_the_key() {
        let a = Polygon::rectangle(gb_geom::Rect::from_bounds(0.0, 0.0, 1.0, 1.0));
        let b = Polygon::rectangle(gb_geom::Rect::from_bounds(0.0, 0.0, 1.0, 2.0));
        assert_ne!(polygon_cover_key(&a, 10), polygon_cover_key(&a, 11));
        assert_ne!(polygon_cover_key(&a, 10), polygon_cover_key(&b, 10));
    }

    #[test]
    fn rotation_preserves_the_covering_bit_for_bit() {
        // The soundness claim behind rotation normalization: the coverer
        // produces the identical CellUnion for any rotation of a ring.
        let grid = crate::Grid::hilbert(gb_geom::Rect::from_bounds(0.0, 0.0, 1.0, 1.0));
        let pts = [
            (0.11, 0.07),
            (0.83, 0.12),
            (0.91, 0.64),
            (0.42, 0.88),
            (0.08, 0.51),
        ];
        let base = Polygon::new(ring(&pts));
        let reference = crate::cover_polygon(&grid, &base, crate::CovererOptions::at_level(9));
        for by in 1..pts.len() {
            let rotated = Polygon::new(rotate(&ring(&pts), by));
            let covering =
                crate::cover_polygon(&grid, &rotated, crate::CovererOptions::at_level(9));
            assert_eq!(reference.cells(), covering.cells());
        }
    }

    #[test]
    fn structure_markers_prevent_ring_aliasing() {
        // Same vertex multiset, different ring structure.
        let outer = ring(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (1.0, 1.0),
            (2.0, 1.0),
            (2.0, 2.0),
        ]);
        let flat = Polygon::new(outer);
        let holed = Polygon::with_holes(
            ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]),
            vec![ring(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0)])],
        );
        assert_ne!(
            normalized_vertex_bits(&flat),
            normalized_vertex_bits(&holed)
        );
    }
}
