//! Model-based property tests: the B+tree must behave exactly like a
//! reference `BTreeMap<u64, Vec<u32>>` under arbitrary bulk loads, inserts,
//! and range scans.

use gb_btree::BPlusTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn model_range(model: &BTreeMap<u64, Vec<u32>>, lo: u64, hi: u64) -> Vec<(u64, u32)> {
    model
        .range(lo..=hi)
        .flat_map(|(&k, vs)| vs.iter().map(move |&v| (k, v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bulk_load_matches_model(
        mut pairs in prop::collection::vec((0u64..1_000, 0u32..10_000), 0..600),
        ranges in prop::collection::vec((0u64..1_100, 0u64..1_100), 1..8),
    ) {
        pairs.sort_unstable();
        let tree = BPlusTree::bulk_load(&pairs);
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &(k, v) in &pairs {
            model.entry(k).or_default().push(v);
        }
        prop_assert_eq!(tree.len(), pairs.len());
        // Full iteration order.
        let got: Vec<(u64, u32)> = tree.iter().collect();
        let want: Vec<(u64, u32)> = model_range(&model, 0, u64::MAX);
        prop_assert_eq!(got, want);
        // Arbitrary range scans.
        for &(a, b) in &ranges {
            let (lo, hi) = (a.min(b), a.max(b));
            let got: Vec<(u64, u32)> = tree.range(lo, hi).collect();
            prop_assert_eq!(got, model_range(&model, lo, hi), "range {}..={}", lo, hi);
        }
    }

    #[test]
    fn incremental_inserts_match_model(
        ops in prop::collection::vec((0u64..500, 0u32..10_000), 0..500),
        probes in prop::collection::vec(0u64..600, 1..10),
    ) {
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &(k, v) in &ops {
            tree.insert(k, v);
            model.entry(k).or_default().push(v);
        }
        prop_assert_eq!(tree.len(), ops.len());
        for &p in &probes {
            let got = tree.lower_bound(p).peek().map(|e| e.0);
            let want = model.range(p..).next().map(|(&k, _)| k);
            prop_assert_eq!(got, want, "lower_bound({})", p);
        }
        // Keys come out sorted with duplicates grouped.
        let keys: Vec<u64> = tree.iter().map(|e| e.0).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mixed_bulk_then_insert_matches_model(
        mut initial in prop::collection::vec((0u64..300, 0u32..10_000), 0..300),
        extra in prop::collection::vec((0u64..300, 0u32..10_000), 0..150),
    ) {
        initial.sort_unstable();
        let mut tree = BPlusTree::bulk_load(&initial);
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &(k, v) in &initial {
            model.entry(k).or_default().push(v);
        }
        for &(k, v) in &extra {
            tree.insert(k, v);
            model.entry(k).or_default().push(v);
        }
        let got_keys: Vec<u64> = tree.iter().map(|e| e.0).collect();
        let want_keys: Vec<u64> = model_range(&model, 0, u64::MAX).iter().map(|e| e.0).collect();
        prop_assert_eq!(got_keys, want_keys);
    }
}
