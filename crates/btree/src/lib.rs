//! A from-scratch B+tree — the paper's "BTree" baseline substrate (§4.1).
//!
//! The paper indexes the sorted raw data with Google's cpp-btree as a
//! secondary index over the one-dimensional spatial key: "We probe the tree
//! for the first child and scan the sorted raw data until no further tuple
//! qualifies." This crate provides the equivalent structure:
//!
//! * [`BPlusTree::bulk_load`] — build from already-sorted `(key, row)`
//!   pairs (the common path: base data is sorted by spatial key),
//! * [`BPlusTree::insert`] — standard top-down insert with node splits,
//! * [`BPlusTree::lower_bound`] / [`BPlusTree::range`] — ordered scans via
//!   linked leaves.
//!
//! Keys are `u64` spatial keys; duplicate keys are allowed (multiple points
//! in one leaf cell). Values are `u32` row indices into the base data.
//!
//! The layout is arena-based (no per-node allocation churn, no unsafe):
//! leaves and internal nodes live in two `Vec`s and reference each other by
//! index.

/// Maximum entries per leaf node.
const LEAF_CAP: usize = 64;
/// Maximum children per internal node.
const INTERNAL_CAP: usize = 64;

/// Reference to a node in one of the arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRef {
    Leaf(u32),
    Internal(u32),
}

#[derive(Debug, Default, Clone)]
struct Leaf {
    keys: Vec<u64>,
    vals: Vec<u32>,
    /// Next leaf in key order (`u32::MAX` = none).
    next: u32,
}

#[derive(Debug, Default, Clone)]
struct Internal {
    /// `keys[i]` = smallest key in the subtree of `children[i + 1]`.
    keys: Vec<u64>,
    children: Vec<NodeRef>,
}

/// A B+tree multimap from `u64` keys to `u32` values.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    leaves: Vec<Leaf>,
    internals: Vec<Internal>,
    root: Option<NodeRef>,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// An empty tree.
    pub fn new() -> Self {
        BPlusTree {
            leaves: Vec::new(),
            internals: Vec::new(),
            root: None,
            len: 0,
        }
    }

    /// Build from `(key, value)` pairs that are already sorted by key.
    ///
    /// Leaves are packed to ~100 % fill (the index is read-mostly, like the
    /// paper's); internal levels are built bottom-up in one pass each.
    pub fn bulk_load(pairs: &[(u64, u32)]) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "pairs must be sorted"
        );
        let mut tree = BPlusTree::new();
        tree.len = pairs.len();
        if pairs.is_empty() {
            return tree;
        }

        // Pack leaves.
        for chunk in pairs.chunks(LEAF_CAP) {
            tree.leaves.push(Leaf {
                keys: chunk.iter().map(|p| p.0).collect(),
                vals: chunk.iter().map(|p| p.1).collect(),
                next: u32::MAX,
            });
        }
        let n_leaves = tree.leaves.len();
        for i in 0..n_leaves - 1 {
            tree.leaves[i].next = (i + 1) as u32;
        }

        // Build internal levels bottom-up.
        let mut level: Vec<(u64, NodeRef)> = (0..n_leaves)
            .map(|i| (tree.leaves[i].keys[0], NodeRef::Leaf(i as u32)))
            .collect();
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len().div_ceil(INTERNAL_CAP));
            for chunk in level.chunks(INTERNAL_CAP) {
                let node = Internal {
                    keys: chunk[1..].iter().map(|c| c.0).collect(),
                    children: chunk.iter().map(|c| c.1).collect(),
                };
                let first_key = chunk[0].0;
                tree.internals.push(node);
                next_level.push((
                    first_key,
                    NodeRef::Internal((tree.internals.len() - 1) as u32),
                ));
            }
            level = next_level;
        }
        tree.root = Some(level[0].1);
        tree
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = just a leaf). 0 for the empty tree.
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut node = self.root;
        while let Some(n) = node {
            h += 1;
            node = match n {
                NodeRef::Leaf(_) => None,
                NodeRef::Internal(i) => Some(self.internals[i as usize].children[0]),
            };
        }
        h
    }

    /// Approximate heap usage — the Figure-11b size-overhead numerator.
    pub fn memory_bytes(&self) -> usize {
        let leaf_bytes: usize = self
            .leaves
            .iter()
            .map(|l| l.keys.len() * 8 + l.vals.len() * 4 + 4)
            .sum();
        let int_bytes: usize = self
            .internals
            .iter()
            .map(|i| i.keys.len() * 8 + i.children.len() * 8)
            .sum();
        leaf_bytes + int_bytes
    }

    /// Insert one `(key, value)` pair (duplicates allowed).
    pub fn insert(&mut self, key: u64, value: u32) {
        self.len += 1;
        match self.root {
            None => {
                self.leaves.push(Leaf {
                    keys: vec![key],
                    vals: vec![value],
                    next: u32::MAX,
                });
                self.root = Some(NodeRef::Leaf(0));
            }
            Some(root) => {
                if let Some((split_key, right)) = self.insert_rec(root, key, value) {
                    let new_root = Internal {
                        keys: vec![split_key],
                        children: vec![root, right],
                    };
                    self.internals.push(new_root);
                    self.root = Some(NodeRef::Internal((self.internals.len() - 1) as u32));
                }
            }
        }
    }

    /// Recursive insert; returns `(first_key_of_right, right_node)` when the
    /// child split.
    fn insert_rec(&mut self, node: NodeRef, key: u64, value: u32) -> Option<(u64, NodeRef)> {
        match node {
            NodeRef::Leaf(li) => {
                let li = li as usize;
                let pos = self.leaves[li].keys.partition_point(|&k| k <= key);
                self.leaves[li].keys.insert(pos, key);
                self.leaves[li].vals.insert(pos, value);
                (self.leaves[li].keys.len() > LEAF_CAP).then(|| self.split_leaf(li))
            }
            NodeRef::Internal(ii) => {
                let idx = self.internals[ii as usize]
                    .keys
                    .partition_point(|&k| k <= key);
                let child = self.internals[ii as usize].children[idx];
                let split = self.insert_rec(child, key, value)?;
                let node = &mut self.internals[ii as usize];
                node.keys.insert(idx, split.0);
                node.children.insert(idx + 1, split.1);
                (node.children.len() > INTERNAL_CAP).then(|| self.split_internal(ii as usize))
            }
        }
    }

    fn split_leaf(&mut self, li: usize) -> (u64, NodeRef) {
        let mid = self.leaves[li].keys.len() / 2;
        let right = Leaf {
            keys: self.leaves[li].keys.split_off(mid),
            vals: self.leaves[li].vals.split_off(mid),
            next: self.leaves[li].next,
        };
        let split_key = right.keys[0];
        self.leaves.push(right);
        let ri = (self.leaves.len() - 1) as u32;
        self.leaves[li].next = ri;
        (split_key, NodeRef::Leaf(ri))
    }

    fn split_internal(&mut self, ii: usize) -> (u64, NodeRef) {
        let mid = self.internals[ii].children.len() / 2;
        // keys has len = children - 1. Key at mid-1 moves up.
        let up_key = self.internals[ii].keys[mid - 1];
        let right = Internal {
            keys: self.internals[ii].keys.split_off(mid),
            children: self.internals[ii].children.split_off(mid),
        };
        self.internals[ii].keys.pop(); // drop the separator that moved up
        self.internals.push(right);
        (up_key, NodeRef::Internal((self.internals.len() - 1) as u32))
    }

    /// Cursor at the first entry with key ≥ `key`.
    pub fn lower_bound(&self, key: u64) -> Cursor<'_> {
        let Some(mut node) = self.root else {
            return Cursor {
                tree: self,
                leaf: u32::MAX,
                slot: 0,
            };
        };
        loop {
            match node {
                NodeRef::Internal(ii) => {
                    let n = &self.internals[ii as usize];
                    // Strict comparison: on equality descend LEFT, because
                    // duplicates of `key` can end the left subtree when a
                    // run of equal keys straddles a node boundary (the
                    // separator is the right subtree's first key). The
                    // leaf-link walk then finds the first occurrence.
                    let idx = n.keys.partition_point(|&k| k < key);
                    node = n.children[idx];
                }
                NodeRef::Leaf(li) => {
                    let leaf = &self.leaves[li as usize];
                    let slot = leaf.keys.partition_point(|&k| k < key);
                    let mut cur = Cursor {
                        tree: self,
                        leaf: li,
                        slot,
                    };
                    if slot == leaf.keys.len() {
                        cur.advance_leaf();
                    }
                    return cur;
                }
            }
        }
    }

    /// Iterate entries with `lo ≤ key ≤ hi`.
    pub fn range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, u32)> + '_ {
        let mut cur = self.lower_bound(lo);
        std::iter::from_fn(move || {
            let (k, v) = cur.peek()?;
            if k > hi {
                return None;
            }
            cur.advance();
            Some((k, v))
        })
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.range(0, u64::MAX)
    }
}

/// A forward cursor over leaf entries.
pub struct Cursor<'a> {
    tree: &'a BPlusTree,
    leaf: u32,
    slot: usize,
}

impl Cursor<'_> {
    /// Current entry, or `None` at the end.
    pub fn peek(&self) -> Option<(u64, u32)> {
        if self.leaf == u32::MAX {
            return None;
        }
        let leaf = &self.tree.leaves[self.leaf as usize];
        leaf.keys.get(self.slot).map(|&k| (k, leaf.vals[self.slot]))
    }

    /// Advance to the next entry.
    pub fn advance(&mut self) {
        if self.leaf == u32::MAX {
            return;
        }
        self.slot += 1;
        if self.slot >= self.tree.leaves[self.leaf as usize].keys.len() {
            self.advance_leaf();
        }
    }

    fn advance_leaf(&mut self) {
        // Skip any empty leaves (possible only in degenerate trees).
        loop {
            self.leaf = self.tree.leaves[self.leaf as usize].next;
            self.slot = 0;
            if self.leaf == u32::MAX || !self.tree.leaves[self.leaf as usize].keys.is_empty() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64) -> Vec<(u64, u32)> {
        (0..n).map(|i| (i * 3, i as u32)).collect()
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.iter().count(), 0);
        assert!(t.lower_bound(5).peek().is_none());
    }

    #[test]
    fn bulk_load_iterates_in_order() {
        let p = pairs(1000);
        let t = BPlusTree::bulk_load(&p);
        assert_eq!(t.len(), 1000);
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, p);
        assert!(t.height() >= 2);
    }

    #[test]
    fn lower_bound_exact_and_between() {
        let t = BPlusTree::bulk_load(&pairs(100));
        assert_eq!(t.lower_bound(30).peek(), Some((30, 10)));
        assert_eq!(t.lower_bound(31).peek(), Some((33, 11)));
        assert_eq!(t.lower_bound(0).peek(), Some((0, 0)));
        assert!(t.lower_bound(300).peek().is_none());
    }

    #[test]
    fn range_scan() {
        let t = BPlusTree::bulk_load(&pairs(100));
        let got: Vec<_> = t.range(30, 40).collect();
        assert_eq!(got, vec![(30, 10), (33, 11), (36, 12), (39, 13)]);
        assert_eq!(t.range(301, 400).count(), 0);
        // Range over everything.
        assert_eq!(t.range(0, u64::MAX).count(), 100);
    }

    #[test]
    fn duplicates_are_kept() {
        let p: Vec<(u64, u32)> = vec![(5, 0), (5, 1), (5, 2), (9, 3)];
        let t = BPlusTree::bulk_load(&p);
        let got: Vec<_> = t.range(5, 5).collect();
        assert_eq!(got.len(), 3);
        let mut t2 = BPlusTree::new();
        for &(k, v) in &p {
            t2.insert(k, v);
        }
        assert_eq!(t2.range(5, 5).count(), 3);
    }

    #[test]
    fn insert_matches_bulk_load() {
        let mut p = pairs(2000);
        // Insert in shuffled order.
        let mut shuffled = p.clone();
        let mut state = 12345u64;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut t = BPlusTree::new();
        for (k, v) in shuffled {
            t.insert(k, v);
        }
        p.sort_unstable();
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got.len(), p.len());
        let keys: Vec<u64> = got.iter().map(|e| e.0).collect();
        let want: Vec<u64> = p.iter().map(|e| e.0).collect();
        assert_eq!(keys, want);
    }

    #[test]
    fn memory_accounting_scales() {
        let small = BPlusTree::bulk_load(&pairs(100));
        let large = BPlusTree::bulk_load(&pairs(10_000));
        assert!(large.memory_bytes() > small.memory_bytes() * 50);
        // Roughly 12 bytes/entry + internals.
        let per_entry = large.memory_bytes() as f64 / 10_000.0;
        assert!(
            per_entry > 11.0 && per_entry < 16.0,
            "per entry {per_entry}"
        );
    }

    #[test]
    fn mixed_bulk_and_insert() {
        let mut t = BPlusTree::bulk_load(&pairs(500));
        for i in 0..500u64 {
            t.insert(i * 3 + 1, 10_000 + i as u32);
        }
        assert_eq!(t.len(), 1000);
        let got: Vec<u64> = t.iter().map(|e| e.0).collect();
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(got.len(), 1000);
    }
}
