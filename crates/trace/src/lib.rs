//! Per-stage tracing for the GeoBlocks serving pipeline: sampled
//! request traces, lock-free per-stage latency histograms, and a
//! slow-query flight recorder.
//!
//! The paper's cost model decomposes a query into distinct stages —
//! covering construction, cached-cell lookup, residual aggregation —
//! and this crate makes that decomposition observable at runtime
//! without giving the hot path a new dependency or a heap allocation:
//!
//! * [`Stage`] is the fixed taxonomy of pipeline stages. There is no
//!   dynamic registration: a stage is a `u8`-sized enum variant, and
//!   every per-stage structure is a fixed array indexed by it.
//! * [`Tracer::begin_request`] opens a request trace on the current
//!   thread (a thread-local slot — no locks, no allocation). A sampling
//!   gate (`GB_TRACE_SAMPLE`, default 1 in 64; `0` disables tracing
//!   entirely) decides whether the request's stage spans are timed; a
//!   disabled tracer reduces every call to a branch on a field.
//! * [`Tracer::span`] / [`StageAcc`] record stage time. Spans are RAII
//!   guards for coarse stages (one per request); [`StageAcc`] is a
//!   caller-owned accumulator for per-cell hot loops, absorbed into the
//!   thread-local trace once per request so the loop body never touches
//!   thread-local storage.
//! * Completed sampled traces land in per-stage [`LatencyHistogram`]s
//!   (one observation per request per touched stage) and in a sharded
//!   ring-buffer flight recorder holding the last N requests. Requests
//!   whose *total* latency crosses `GB_SLOW_US` are retained in a
//!   separate slow lane **whether or not they were sampled** — the
//!   requests you most want to see are exactly the ones sampling would
//!   usually drop.
//!
//! Nesting: the outermost `begin_request` on a thread owns the trace
//! (the serve layer when a request arrives over HTTP, the engine when
//! it is driven directly); inner `begin_request` calls are inert, and
//! inner spans attribute to the owner's trace. Worker threads spawned
//! by `gb_common::pool` have no active trace, so per-task stage time is
//! not attributed — the coordinator's `PoolWait` span plus the pool's
//! own busy-ns counters cover that gap.
//!
//! This module is on the `gb_lint` `panic-path` list: all array access
//! is via checked lookups or iterators, never indexing that can panic.

use gb_common::sync::OrderedMutex;
use gb_common::{Counter, LatencyHistogram};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

/// The fixed stage taxonomy of the query pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Polygon → covering: memo probe plus (on miss) cover computation.
    CoveringResolve,
    /// Flat-index / trie-walk lookup of a covering cell.
    TrieLookup,
    /// Residual aggregation answered by the pyramid (or prefix sums).
    PyramidCombine,
    /// Residual aggregation that fell back to scanning base rows.
    ScanFallback,
    /// Serve-layer result-cache probe.
    ResultCache,
    /// Admission control (tenant token bucket).
    Quota,
    /// Coordinator wall time waiting on the fork-join pool.
    PoolWait,
    /// Encoding the wire reply.
    Serialize,
}

impl Stage {
    /// Number of stages (the length of every per-stage array).
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::CoveringResolve,
        Stage::TrieLookup,
        Stage::PyramidCombine,
        Stage::ScanFallback,
        Stage::ResultCache,
        Stage::Quota,
        Stage::PoolWait,
        Stage::Serialize,
    ];

    /// Index into per-stage arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The metric-label name (`gb_stage_latency_ns{stage="..."}`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::CoveringResolve => "covering_resolve",
            Stage::TrieLookup => "trie_lookup",
            Stage::PyramidCombine => "pyramid_combine",
            Stage::ScanFallback => "scan_fallback",
            Stage::ResultCache => "result_cache",
            Stage::Quota => "quota",
            Stage::PoolWait => "pool_wait",
            Stage::Serialize => "serialize",
        }
    }
}

/// Trace flag: the covering was served by the covering memo.
pub const FLAG_MEMO_HIT: u32 = 1 << 0;
/// Trace flag: the reply was served by the serve-layer result cache.
pub const FLAG_CACHE_HIT: u32 = 1 << 1;

/// The engine's `QueryStats`, mirrored here so `gb_trace` stays at the
/// bottom of the dependency DAG (the core crate depends on this one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Covering cells probed.
    pub query_cells: u64,
    /// Cells whose aggregates were combined into the result.
    pub cells_combined: u64,
    /// Base-table searches (scan fallbacks).
    pub searches: u64,
}

/// Tracer tuning knobs. `Default` matches the documented env defaults;
/// tests construct configs programmatically to avoid env races.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Sample 1 in `sample_rate` requests (1 = every request, 0 =
    /// tracing disabled entirely).
    pub sample_rate: u64,
    /// Total-latency threshold (microseconds) above which a request is
    /// retained in the slow lane even when unsampled. `0` retains every
    /// request — the e2e-test configuration.
    pub slow_us: u64,
    /// Completed-request ring capacity (`/v1/debug/traces`).
    pub recorder_capacity: usize,
    /// Slow-lane ring capacity (`/v1/debug/slow`); `0` disables it.
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample_rate: 64,
            slow_us: 10_000,
            recorder_capacity: 256,
            slow_capacity: 64,
        }
    }
}

impl TraceConfig {
    /// A config with tracing switched off (spans cost one branch).
    pub fn disabled() -> TraceConfig {
        TraceConfig {
            sample_rate: 0,
            ..TraceConfig::default()
        }
    }

    /// Read `GB_TRACE_SAMPLE` / `GB_SLOW_US`, falling back to defaults.
    pub fn from_env() -> TraceConfig {
        let d = TraceConfig::default();
        TraceConfig {
            sample_rate: env_u64("GB_TRACE_SAMPLE", d.sample_rate),
            slow_us: env_u64("GB_SLOW_US", d.slow_us),
            ..d
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Saturating `Instant → u64` elapsed nanoseconds.
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// One completed request trace, as retained by the flight recorder.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Completion sequence number (per tracer).
    pub seq: u64,
    /// Request kind ("select", "count", "batch", "update", ...).
    pub kind: &'static str,
    /// Whether stage spans were timed for this request.
    pub sampled: bool,
    /// End-to-end wall time.
    pub total_ns: u64,
    /// Accumulated nanoseconds per stage (indexed by [`Stage::index`]).
    pub stage_ns: [u64; Stage::COUNT],
    /// Span/accumulator count per stage.
    pub stage_calls: [u32; Stage::COUNT],
    /// `FLAG_*` bitmask.
    pub flags: u32,
    /// Engine-reported query statistics.
    pub stats: TraceStats,
    /// Data epoch the request executed against.
    pub epoch: u64,
}

impl RequestTrace {
    /// Whether the covering memo served this request's covering.
    pub fn memo_hit(&self) -> bool {
        self.flags & FLAG_MEMO_HIT != 0
    }

    /// Whether the result cache served this request's reply.
    pub fn cache_hit(&self) -> bool {
        self.flags & FLAG_CACHE_HIT != 0
    }

    /// Nanoseconds attributed to `stage`.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns.get(stage.index()).copied().unwrap_or(0)
    }

    /// Span count attributed to `stage`.
    pub fn stage_calls(&self, stage: Stage) -> u32 {
        self.stage_calls.get(stage.index()).copied().unwrap_or(0)
    }

    /// One JSON-ish line (stages with zero calls are omitted).
    pub fn render(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"sampled\":{},\"total_ns\":{},\"epoch\":{},\
             \"memo_hit\":{},\"cache_hit\":{},\"query_cells\":{},\"cells_combined\":{},\
             \"searches\":{},\"stages\":{{",
            self.seq,
            self.kind,
            self.sampled,
            self.total_ns,
            self.epoch,
            self.memo_hit(),
            self.cache_hit(),
            self.stats.query_cells,
            self.stats.cells_combined,
            self.stats.searches
        );
        let mut first = true;
        for stage in Stage::ALL {
            let calls = self.stage_calls(stage);
            if calls == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\"{}\":{{\"ns\":{},\"calls\":{}}}",
                stage.name(),
                self.stage_ns(stage),
                calls
            ));
        }
        s.push_str("}}");
        s
    }
}

/// Render a recorder snapshot as one JSON-ish line per trace.
pub fn render_traces(traces: &[RequestTrace]) -> String {
    let mut out = String::with_capacity(traces.len() * 160);
    for t in traces {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// The per-thread in-flight trace. Plain fields behind a `RefCell` —
/// recording a span is two array adds, no synchronization.
#[derive(Debug)]
struct ActiveTrace {
    tracer_id: u64,
    sampled: bool,
    kind: &'static str,
    stage_ns: [u64; Stage::COUNT],
    stage_calls: [u32; Stage::COUNT],
    flags: u32,
    stats: TraceStats,
    epoch: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Rank of the flight-recorder ring shards in the declared lock order:
/// above every engine lock — traces are pushed after a request fully
/// completes (guard drop) and snapshotted by debug endpoints, never
/// while query-path locks are held.
const RANK_TRACES: u8 = 4;

/// Ring shard count — requests rotate across shards so concurrent
/// completions contend on different locks.
const RECORDER_SHARDS: usize = 4;

/// A sharded bounded ring of completed traces. Push rotates across
/// shards via a relaxed ticket; snapshot re-sorts by completion seq.
#[derive(Debug)]
struct FlightRecorder {
    ring: Vec<OrderedMutex<VecDeque<RequestTrace>>>,
    per_shard: usize,
    rotor: Counter,
}

impl FlightRecorder {
    fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: (0..RECORDER_SHARDS)
                .map(|_| OrderedMutex::new("traces", RANK_TRACES, VecDeque::new()))
                .collect(),
            per_shard: capacity.div_ceil(RECORDER_SHARDS),
            rotor: Counter::new(),
        }
    }

    fn push(&self, trace: RequestTrace) {
        if self.per_shard == 0 || self.ring.is_empty() {
            return;
        }
        let idx = self.rotor.next() as usize % self.ring.len();
        if let Some(traces) = self.ring.get(idx) {
            let mut shard = traces.lock();
            while shard.len() >= self.per_shard {
                shard.pop_front();
            }
            shard.push_back(trace);
        }
    }

    fn snapshot(&self) -> Vec<RequestTrace> {
        let mut all: Vec<RequestTrace> = Vec::new();
        for traces in &self.ring {
            all.extend(traces.lock().iter().cloned());
        }
        all.sort_by_key(|t| t.seq);
        all
    }
}

/// Distinguishes tracers so a span opened against one tracer never
/// writes into a trace owned by another (multiple engines in one
/// process — tests, the bench harness's A/B runs).
static TRACER_IDS: Counter = Counter::new();

/// The per-engine tracing hub: sampling gate, per-stage histograms,
/// flight recorder, slow lane. Shared as `Arc<Tracer>` by the engine
/// and the serve layer; every method takes `&self`.
#[derive(Debug)]
pub struct Tracer {
    id: u64,
    config: TraceConfig,
    ticket: Counter,
    seq: Counter,
    hists: Vec<LatencyHistogram>,
    recorder: FlightRecorder,
    slow: FlightRecorder,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(TraceConfig::default())
    }
}

impl Tracer {
    /// A tracer with explicit knobs.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            id: TRACER_IDS.next().wrapping_add(1),
            recorder: FlightRecorder::new(config.recorder_capacity),
            slow: FlightRecorder::new(config.slow_capacity),
            config,
            ticket: Counter::new(),
            seq: Counter::new(),
            hists: (0..Stage::COUNT)
                .map(|_| LatencyHistogram::default())
                .collect(),
        }
    }

    /// A tracer configured from `GB_TRACE_SAMPLE` / `GB_SLOW_US`.
    pub fn from_env() -> Tracer {
        Tracer::new(TraceConfig::from_env())
    }

    /// A tracer that records nothing (every call is a branch + return).
    pub fn disabled() -> Tracer {
        Tracer::new(TraceConfig::disabled())
    }

    /// The tracer's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Whether tracing is on at all (`sample_rate != 0`).
    pub fn enabled(&self) -> bool {
        self.config.sample_rate != 0
    }

    /// Open a request trace on this thread. The outermost guard owns
    /// the trace; nested calls return an inert guard. On drop, a
    /// sampled trace lands in the stage histograms and the recorder; a
    /// slow one (by total latency) lands in the slow lane regardless of
    /// sampling.
    pub fn begin_request(&self, kind: &'static str) -> RequestGuard<'_> {
        if self.config.sample_rate == 0 {
            return RequestGuard {
                tracer: self,
                start: None,
            };
        }
        let start = ACTIVE.with(|slot| {
            let mut active = slot.borrow_mut();
            if active.is_some() {
                return None;
            }
            let sampled = self.ticket.next().is_multiple_of(self.config.sample_rate);
            *active = Some(ActiveTrace {
                tracer_id: self.id,
                sampled,
                kind,
                stage_ns: [0; Stage::COUNT],
                stage_calls: [0; Stage::COUNT],
                flags: 0,
                stats: TraceStats::default(),
                epoch: 0,
            });
            Some(Instant::now())
        });
        RequestGuard {
            tracer: self,
            start,
        }
    }

    /// Whether the current thread carries one of this tracer's sampled
    /// traces — the arm/disarm decision for spans and accumulators.
    fn thread_is_sampled(&self) -> bool {
        if self.config.sample_rate == 0 {
            return false;
        }
        ACTIVE.with(|slot| {
            slot.borrow()
                .as_ref()
                .is_some_and(|a| a.tracer_id == self.id && a.sampled)
        })
    }

    /// Time one stage via RAII: elapsed time is added to the current
    /// thread's trace when the guard drops. Disarmed (no timestamp
    /// taken) when the thread's trace is absent, foreign, or unsampled.
    pub fn span(&self, stage: Stage) -> SpanGuard {
        SpanGuard {
            tracer_id: self.id,
            stage,
            start: self.thread_is_sampled().then(Instant::now),
        }
    }

    /// A stage-time accumulator for per-cell loops: armed iff the
    /// current thread carries a sampled trace. Pass it down the hot
    /// path by `&mut`, then hand it back via [`Tracer::absorb`].
    pub fn stage_acc(&self) -> StageAcc {
        StageAcc::new(self.thread_is_sampled())
    }

    /// Fold an accumulator into the current thread's trace.
    pub fn absorb(&self, acc: StageAcc) {
        if !acc.armed {
            return;
        }
        ACTIVE.with(|slot| {
            if let Some(active) = slot.borrow_mut().as_mut() {
                if active.tracer_id != self.id {
                    return;
                }
                for (dst, src) in active.stage_ns.iter_mut().zip(acc.ns.iter()) {
                    *dst = dst.saturating_add(*src);
                }
                for (dst, src) in active.stage_calls.iter_mut().zip(acc.calls.iter()) {
                    *dst = dst.saturating_add(*src);
                }
            }
        });
    }

    /// Set a `FLAG_*` bit on the current thread's trace (recorded even
    /// for unsampled requests — the slow lane keeps the flags).
    pub fn flag(&self, flag: u32) {
        if self.config.sample_rate == 0 {
            return;
        }
        ACTIVE.with(|slot| {
            if let Some(active) = slot.borrow_mut().as_mut() {
                if active.tracer_id == self.id {
                    active.flags |= flag;
                }
            }
        });
    }

    /// Accumulate engine query statistics onto the current trace.
    pub fn note_stats(&self, stats: TraceStats) {
        if self.config.sample_rate == 0 {
            return;
        }
        ACTIVE.with(|slot| {
            if let Some(active) = slot.borrow_mut().as_mut() {
                if active.tracer_id == self.id {
                    active.stats.query_cells =
                        active.stats.query_cells.saturating_add(stats.query_cells);
                    active.stats.cells_combined = active
                        .stats
                        .cells_combined
                        .saturating_add(stats.cells_combined);
                    active.stats.searches = active.stats.searches.saturating_add(stats.searches);
                }
            }
        });
    }

    /// Record the data epoch the current request executed against.
    pub fn note_epoch(&self, epoch: u64) {
        if self.config.sample_rate == 0 {
            return;
        }
        ACTIVE.with(|slot| {
            if let Some(active) = slot.borrow_mut().as_mut() {
                if active.tracer_id == self.id {
                    active.epoch = epoch;
                }
            }
        });
    }

    /// The per-stage histograms, indexed by [`Stage::index`]. One
    /// observation per sampled request per touched stage (accumulated
    /// nanoseconds), so quantiles read as per-request stage costs.
    pub fn histograms(&self) -> &[LatencyHistogram] {
        &self.hists
    }

    /// The histogram for one stage.
    pub fn stage_histogram(&self, stage: Stage) -> Option<&LatencyHistogram> {
        self.hists.get(stage.index())
    }

    /// The last N completed sampled traces, oldest first.
    pub fn recent(&self) -> Vec<RequestTrace> {
        self.recorder.snapshot()
    }

    /// The retained slow-lane traces, oldest first.
    pub fn slow_traces(&self) -> Vec<RequestTrace> {
        self.slow.snapshot()
    }
}

/// RAII owner of a request trace (see [`Tracer::begin_request`]).
#[derive(Debug)]
pub struct RequestGuard<'a> {
    tracer: &'a Tracer,
    start: Option<Instant>,
}

impl Drop for RequestGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let total_ns = elapsed_ns(start);
        let Some(active) = ACTIVE.with(|slot| slot.borrow_mut().take()) else {
            return;
        };
        if active.tracer_id != self.tracer.id {
            // A foreign trace (tracer misuse): put it back untouched.
            ACTIVE.with(|slot| *slot.borrow_mut() = Some(active));
            return;
        }
        let trace = RequestTrace {
            seq: self.tracer.seq.next(),
            kind: active.kind,
            sampled: active.sampled,
            total_ns,
            stage_ns: active.stage_ns,
            stage_calls: active.stage_calls,
            flags: active.flags,
            stats: active.stats,
            epoch: active.epoch,
        };
        if trace.sampled {
            let stage_obs = trace.stage_ns.iter().zip(trace.stage_calls.iter());
            for (hist, (&ns, &calls)) in self.tracer.hists.iter().zip(stage_obs) {
                if calls > 0 {
                    hist.record(ns);
                }
            }
            self.tracer.recorder.push(trace.clone());
        }
        if total_ns >= self.tracer.config.slow_us.saturating_mul(1000) {
            self.tracer.slow.push(trace);
        }
    }
}

/// RAII stage timer (see [`Tracer::span`]). Cheap to create when
/// disarmed: no timestamp, and drop is a branch.
#[derive(Debug)]
#[must_use = "a span records its stage time when dropped"]
pub struct SpanGuard {
    tracer_id: u64,
    stage: Stage,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let ns = elapsed_ns(start);
        let (tracer_id, idx) = (self.tracer_id, self.stage.index());
        ACTIVE.with(|slot| {
            if let Some(active) = slot.borrow_mut().as_mut() {
                if active.tracer_id != tracer_id {
                    return;
                }
                if let Some(v) = active.stage_ns.get_mut(idx) {
                    *v = v.saturating_add(ns);
                }
                if let Some(c) = active.stage_calls.get_mut(idx) {
                    *c = c.saturating_add(1);
                }
            }
        });
    }
}

/// A caller-owned stage-time accumulator for hot loops. When disarmed
/// ([`StageAcc::inactive`], or the request is unsampled) `time` runs
/// the closure with zero bookkeeping — no timestamps, two branches.
#[derive(Debug)]
pub struct StageAcc {
    armed: bool,
    ns: [u64; Stage::COUNT],
    calls: [u32; Stage::COUNT],
}

impl StageAcc {
    fn new(armed: bool) -> StageAcc {
        StageAcc {
            armed,
            ns: [0; Stage::COUNT],
            calls: [0; Stage::COUNT],
        }
    }

    /// A permanently disarmed accumulator — the zero-cost argument for
    /// callers outside any traced request (reference implementations,
    /// tests).
    pub fn inactive() -> StageAcc {
        StageAcc::new(false)
    }

    /// Whether this accumulator is recording.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Run `f`, attributing its elapsed time to `stage` when armed.
    #[inline]
    pub fn time<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        if !self.armed {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let ns = elapsed_ns(start);
        let idx = stage.index();
        if let Some(v) = self.ns.get_mut(idx) {
            *v = v.saturating_add(ns);
        }
        if let Some(c) = self.calls.get_mut(idx) {
            *c = c.saturating_add(1);
        }
        out
    }

    /// Nanoseconds accumulated for `stage` so far.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.ns.get(stage.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampled_config() -> TraceConfig {
        TraceConfig {
            sample_rate: 1,
            slow_us: u64::MAX / 2000, // slow lane effectively off
            recorder_capacity: 16,
            slow_capacity: 16,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _req = t.begin_request("select");
            let _s = t.span(Stage::TrieLookup);
        }
        assert!(!t.enabled());
        assert!(t.recent().is_empty());
        assert!(t.slow_traces().is_empty());
        assert!(t.histograms().iter().all(|h| h.count() == 0));
    }

    #[test]
    fn sampled_request_lands_in_histograms_and_recorder() {
        let t = Tracer::new(sampled_config());
        {
            let _req = t.begin_request("select");
            {
                let _s = t.span(Stage::CoveringResolve);
            }
            {
                let _s = t.span(Stage::TrieLookup);
            }
            {
                let _s = t.span(Stage::TrieLookup);
            }
            t.flag(FLAG_MEMO_HIT);
            t.note_stats(TraceStats {
                query_cells: 9,
                cells_combined: 4,
                searches: 1,
            });
            t.note_epoch(7);
        }
        let hist = t.stage_histogram(Stage::TrieLookup).expect("stage");
        assert_eq!(hist.count(), 1, "one observation per request per stage");
        let traces = t.recent();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.kind, "select");
        assert!(trace.sampled);
        assert!(trace.memo_hit());
        assert!(!trace.cache_hit());
        assert_eq!(trace.stage_calls(Stage::TrieLookup), 2);
        assert_eq!(trace.stage_calls(Stage::CoveringResolve), 1);
        assert_eq!(trace.stage_calls(Stage::Serialize), 0);
        assert_eq!(trace.stats.query_cells, 9);
        assert_eq!(trace.epoch, 7);
    }

    #[test]
    fn sampling_gate_skips_requests() {
        let t = Tracer::new(TraceConfig {
            sample_rate: 4,
            ..sampled_config()
        });
        for _ in 0..8 {
            let _req = t.begin_request("select");
            let _s = t.span(Stage::TrieLookup);
        }
        // Tickets 0 and 4 sample.
        assert_eq!(t.recent().len(), 2);
        assert_eq!(
            t.stage_histogram(Stage::TrieLookup).expect("stage").count(),
            2
        );
    }

    #[test]
    fn nested_begin_request_is_inert_and_inner_spans_attribute_to_owner() {
        let t = Tracer::new(sampled_config());
        {
            let _outer = t.begin_request("query");
            {
                let _inner = t.begin_request("select");
                let _s = t.span(Stage::PyramidCombine);
            } // inner drop must not close the outer trace
            let _s = t.span(Stage::Serialize);
        }
        let traces = t.recent();
        assert_eq!(traces.len(), 1, "one trace, owned by the outer guard");
        assert_eq!(traces[0].kind, "query");
        assert_eq!(traces[0].stage_calls(Stage::PyramidCombine), 1);
        assert_eq!(traces[0].stage_calls(Stage::Serialize), 1);
    }

    #[test]
    fn slow_lane_captures_unsampled_requests() {
        let t = Tracer::new(TraceConfig {
            sample_rate: 1_000_000,
            slow_us: 0, // every request is "slow"
            recorder_capacity: 16,
            slow_capacity: 16,
        });
        {
            let _req = t.begin_request("select"); // ticket 0: sampled
        }
        {
            let _req = t.begin_request("count"); // ticket 1: unsampled
        }
        assert_eq!(t.recent().len(), 1, "only the sampled request");
        let slow = t.slow_traces();
        assert_eq!(slow.len(), 2, "slow lane keeps both");
        assert!(slow.iter().any(|s| s.kind == "count" && !s.sampled));
    }

    #[test]
    fn recorder_is_bounded_and_ordered() {
        let t = Tracer::new(TraceConfig {
            recorder_capacity: 8,
            ..sampled_config()
        });
        for _ in 0..100 {
            let _req = t.begin_request("select");
        }
        let traces = t.recent();
        assert!(traces.len() <= 8);
        assert!(traces.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(traces.iter().all(|tr| tr.seq >= 92), "oldest evicted");
    }

    #[test]
    fn zero_capacity_recorder_drops_everything() {
        let t = Tracer::new(TraceConfig {
            recorder_capacity: 0,
            slow_capacity: 0,
            slow_us: 0,
            sample_rate: 1,
        });
        {
            let _req = t.begin_request("select");
        }
        assert!(t.recent().is_empty());
        assert!(t.slow_traces().is_empty());
    }

    #[test]
    fn stage_acc_times_and_absorbs() {
        let t = Tracer::new(sampled_config());
        {
            let _req = t.begin_request("select");
            let mut acc = t.stage_acc();
            assert!(acc.armed());
            let out = acc.time(Stage::ScanFallback, || 41 + 1);
            assert_eq!(out, 42);
            acc.time(Stage::ScanFallback, || ());
            t.absorb(acc);
        }
        let traces = t.recent();
        assert_eq!(traces[0].stage_calls(Stage::ScanFallback), 2);
    }

    #[test]
    fn inactive_acc_is_a_passthrough() {
        let mut acc = StageAcc::inactive();
        assert!(!acc.armed());
        assert_eq!(acc.time(Stage::TrieLookup, || 7), 7);
        assert_eq!(acc.stage_ns(Stage::TrieLookup), 0);
    }

    #[test]
    fn spans_do_not_cross_tracers() {
        let owner = Tracer::new(sampled_config());
        let other = Tracer::new(sampled_config());
        {
            let _req = owner.begin_request("select");
            let _foreign = other.span(Stage::TrieLookup);
            let _ours = owner.span(Stage::Quota);
        }
        let traces = owner.recent();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].stage_calls(Stage::TrieLookup), 0);
        assert_eq!(traces[0].stage_calls(Stage::Quota), 1);
    }

    #[test]
    fn render_is_json_ish_and_omits_idle_stages() {
        let t = Tracer::new(sampled_config());
        {
            let _req = t.begin_request("select");
            let _s = t.span(Stage::TrieLookup);
            t.flag(FLAG_CACHE_HIT);
        }
        let text = render_traces(&t.recent());
        assert!(text.contains("\"kind\":\"select\""));
        assert!(text.contains("\"cache_hit\":true"));
        assert!(text.contains("\"trie_lookup\""));
        assert!(!text.contains("\"serialize\""));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn env_defaults_are_documented_values() {
        let d = TraceConfig::default();
        assert_eq!(d.sample_rate, 64);
        assert_eq!(d.slow_us, 10_000);
        assert!(Tracer::default().enabled());
        assert_eq!(TraceConfig::disabled().sample_rate, 0);
    }

    #[test]
    fn stage_taxonomy_is_fixed_and_indexable() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(!stage.name().is_empty());
        }
    }
}
