//! Property tests for the aR-tree.
//!
//! Listing 3's query is deliberately approximate (case (a) prunes sibling
//! subtrees; overlapping children may double count), so the tests pin the
//! *guaranteed* behaviours: structural invariants after arbitrary insert
//! sequences, exact root aggregates, exactness when the search contains
//! everything, and zero results on disjoint queries.

use gb_artree::{ARTree, Aggregate, CountAgg, MAX_ENTRIES};
use gb_geom::{Point, Rect};
use proptest::prelude::*;

/// Sum aggregate to check value propagation, not just counts.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SumAgg {
    count: u64,
    sum: f64,
}

impl Aggregate for SumAgg {
    fn merge_from(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn root_aggregate_is_exact(points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..600)) {
        let mut t: ARTree<SumAgg> = ARTree::new();
        let mut want_sum = 0.0;
        for (i, &(x, y)) in points.iter().enumerate() {
            let v = i as f64 * 0.25;
            want_sum += v;
            t.insert(Point::new(x, y), SumAgg { count: 1, sum: v });
        }
        let root = t.root_aggregate().expect("non-empty");
        prop_assert_eq!(root.count, points.len() as u64);
        prop_assert!((root.sum - want_sum).abs() < 1e-6 * want_sum.max(1.0));
        prop_assert_eq!(t.len(), points.len());
    }

    #[test]
    fn all_containing_search_is_exact(points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..400)) {
        let mut t: ARTree<CountAgg> = ARTree::new();
        for &(x, y) in &points {
            t.insert(Point::new(x, y), CountAgg(1));
        }
        let mut acc = CountAgg(0);
        t.query(&Rect::from_bounds(-1.0, -1.0, 101.0, 101.0), &mut acc);
        prop_assert_eq!(acc.0, points.len() as u64);
    }

    #[test]
    fn disjoint_search_is_empty(points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..300)) {
        let mut t: ARTree<CountAgg> = ARTree::new();
        for &(x, y) in &points {
            t.insert(Point::new(x, y), CountAgg(1));
        }
        let mut acc = CountAgg(0);
        t.query(&Rect::from_bounds(500.0, 500.0, 600.0, 600.0), &mut acc);
        prop_assert_eq!(acc.0, 0);
    }

    #[test]
    fn fanout_bounded_under_adversarial_orders(
        points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), (MAX_ENTRIES + 1)..500),
    ) {
        // Duplicate-heavy, tightly clustered insert orders stress splits.
        let mut t: ARTree<CountAgg> = ARTree::new();
        for &(x, y) in &points {
            t.insert(Point::new(x, y), CountAgg(1));
        }
        prop_assert!(t.height() >= 2);
        prop_assert_eq!(t.root_aggregate(), Some(&CountAgg(points.len() as u64)));
    }
}
