//! A from-scratch aggregate R-tree (aR-tree) — the paper's pre-aggregating
//! baseline (§4.1, Listing 3, Figure 9).
//!
//! The aR-tree (Papadias et al., SSTD 2001) enhances the R-tree by storing,
//! for every node, the aggregate over all data entries in its subtree, so
//! queries can consume whole subtrees in O(1) when a node's MBR is fully
//! contained in the search region. Following the paper:
//!
//! * fanout 16 ("each node covers a region r and has up to 16 child nodes"),
//! * R\*-style insertion (ChooseSubtree with overlap enlargement at the leaf
//!   level, margin-driven split-axis selection) to minimise node overlap,
//! * the **Listing-3 query**: (a) if one child's region contains the search
//!   area, recurse into only that child; (b) children contained in the
//!   search area contribute their aggregate directly; (c) partially
//!   overlapping children are recursed into afterwards. As in the paper,
//!   overlapping internal nodes can be counted **multiple times** — the
//!   result is an upper bound, visiting exactly the nodes the original
//!   aR-tree visits.
//!
//! The aggregate payload is generic (the [`Aggregate`] trait), keeping this
//! crate independent of the GeoBlocks schema machinery.

use gb_geom::{Point, Rect};

/// A mergeable aggregate record (count/min/max/sum bundles, etc.).
pub trait Aggregate: Clone {
    /// Fold `other` into `self`.
    fn merge_from(&mut self, other: &Self);
}

/// Maximum entries per node (the paper's node size).
pub const MAX_ENTRIES: usize = 16;
/// Minimum fill after a split (40 % of the maximum, the R* recommendation).
pub const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone)]
struct Node<A> {
    /// 0 = leaf.
    level: u32,
    mbr: Rect,
    agg: Option<A>,
    /// Child node indices (internal nodes).
    children: Vec<u32>,
    /// Data entries (leaves).
    data: Vec<(Point, A)>,
}

impl<A: Aggregate> Node<A> {
    fn new(level: u32) -> Self {
        Node {
            level,
            mbr: Rect::empty(),
            agg: None,
            children: Vec::new(),
            data: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.level == 0
    }

    fn num_entries(&self) -> usize {
        if self.is_leaf() {
            self.data.len()
        } else {
            self.children.len()
        }
    }

    fn merge_agg(&mut self, other: &A) {
        match &mut self.agg {
            Some(a) => a.merge_from(other),
            None => self.agg = Some(other.clone()),
        }
    }
}

/// The aggregate R-tree.
#[derive(Debug, Clone)]
pub struct ARTree<A> {
    nodes: Vec<Node<A>>,
    root: u32,
    len: usize,
}

impl<A: Aggregate> Default for ARTree<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Aggregate> ARTree<A> {
    /// An empty tree (a single empty leaf as root).
    pub fn new() -> Self {
        ARTree {
            nodes: vec![Node::new(0)],
            root: 0,
            len: 0,
        }
    }

    /// Number of data entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.nodes[self.root as usize].level as usize + 1
    }

    /// Total node count (for size accounting and tests).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap usage given the in-memory size of one aggregate.
    ///
    /// Figure 11b accounts the per-node aggregate records (Figure 9's "cell
    /// aggregates" referenced by offset) plus node structure.
    pub fn memory_bytes(&self, agg_bytes: usize) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                32 // MBR
                    + agg_bytes
                    + n.children.len() * 4
                    + n.data.len() * (16 + agg_bytes)
            })
            .sum()
    }

    /// Insert a point with its aggregate record.
    pub fn insert(&mut self, point: Point, agg: A) {
        self.len += 1;
        // Descend to a leaf, remembering the path.
        let mut path: Vec<u32> = Vec::with_capacity(8);
        let mut cur = self.root;
        loop {
            path.push(cur);
            let node = &self.nodes[cur as usize];
            if node.is_leaf() {
                break;
            }
            cur = self.choose_subtree(node, point);
        }

        // Update MBR + aggregates along the path.
        for &ni in &path {
            let node = &mut self.nodes[ni as usize];
            node.mbr = node.mbr.expanded(point);
            node.merge_agg(&agg);
        }

        // Insert into the leaf, split upward while overflowing.
        self.nodes[cur as usize].data.push((point, agg));
        let mut child_level = 0usize;
        while self.nodes[path[path.len() - 1 - child_level] as usize].num_entries() > MAX_ENTRIES {
            let ni = path[path.len() - 1 - child_level];
            let new_node = self.split(ni);
            if path.len() - 1 - child_level == 0 {
                // Split the root: grow the tree.
                let old_root = self.root;
                let mut root = Node::new(self.nodes[old_root as usize].level + 1);
                root.children = vec![old_root, new_node];
                self.recompute(&mut root);
                self.nodes.push(root);
                self.root = (self.nodes.len() - 1) as u32;
                break;
            }
            let parent = path[path.len() - 2 - child_level];
            self.nodes[parent as usize].children.push(new_node);
            child_level += 1;
        }
    }

    /// R* ChooseSubtree: least overlap enlargement when children are
    /// leaves, least area enlargement otherwise; ties by area.
    fn choose_subtree(&self, node: &Node<A>, point: Point) -> u32 {
        let children_are_leaves = node.level == 1;
        let mut best = node.children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &ci in &node.children {
            let c = &self.nodes[ci as usize];
            let enlarged = c.mbr.expanded(point);
            let area_growth = enlarged.area() - c.mbr.area();
            let overlap_growth = if children_are_leaves {
                let mut delta = 0.0;
                for &oi in &node.children {
                    if oi == ci {
                        continue;
                    }
                    let other = &self.nodes[oi as usize].mbr;
                    delta += enlarged.intersection(other).area() - c.mbr.intersection(other).area();
                }
                delta
            } else {
                0.0
            };
            let key = (overlap_growth, area_growth, c.mbr.area());
            if key < best_key {
                best_key = key;
                best = ci;
            }
        }
        best
    }

    /// R*-style split of an overflowing node; returns the new node's index.
    fn split(&mut self, ni: u32) -> u32 {
        let level = self.nodes[ni as usize].level;
        let rects: Vec<Rect> = if level == 0 {
            self.nodes[ni as usize]
                .data
                .iter()
                .map(|(p, _)| Rect::new(*p, *p))
                .collect()
        } else {
            self.nodes[ni as usize]
                .children
                .iter()
                .map(|&c| self.nodes[c as usize].mbr)
                .collect()
        };

        let (split_order, split_at) = rstar_split(&rects);

        // Partition entries according to the chosen ordering.
        let mut right = Node::new(level);
        if level == 0 {
            let data = std::mem::take(&mut self.nodes[ni as usize].data);
            let mut left_data = Vec::with_capacity(split_at);
            let mut right_data = Vec::with_capacity(data.len() - split_at);
            let mut reordered: Vec<Option<(Point, A)>> = data.into_iter().map(Some).collect();
            for (i, &idx) in split_order.iter().enumerate() {
                let e = reordered[idx].take().expect("each index once");
                if i < split_at {
                    left_data.push(e);
                } else {
                    right_data.push(e);
                }
            }
            self.nodes[ni as usize].data = left_data;
            right.data = right_data;
        } else {
            let children = std::mem::take(&mut self.nodes[ni as usize].children);
            let mut left_ch = Vec::with_capacity(split_at);
            let mut right_ch = Vec::with_capacity(children.len() - split_at);
            for (i, &idx) in split_order.iter().enumerate() {
                if i < split_at {
                    left_ch.push(children[idx]);
                } else {
                    right_ch.push(children[idx]);
                }
            }
            self.nodes[ni as usize].children = left_ch;
            right.children = right_ch;
        }

        // Recompute both halves' MBR + aggregate from scratch.
        let mut left = std::mem::replace(&mut self.nodes[ni as usize], Node::new(level));
        self.recompute(&mut left);
        self.nodes[ni as usize] = left;
        self.recompute(&mut right);
        self.nodes.push(right);
        (self.nodes.len() - 1) as u32
    }

    /// Recompute a node's MBR and aggregate from its entries.
    fn recompute(&self, node: &mut Node<A>) {
        node.mbr = Rect::empty();
        node.agg = None;
        if node.is_leaf() {
            for (p, a) in &node.data {
                node.mbr = node.mbr.expanded(*p);
                match &mut node.agg {
                    Some(acc) => acc.merge_from(a),
                    None => node.agg = Some(a.clone()),
                }
            }
        } else {
            for &ci in &node.children {
                let c = &self.nodes[ci as usize];
                node.mbr = node.mbr.union(&c.mbr);
                if let Some(ca) = &c.agg {
                    match &mut node.agg {
                        Some(acc) => acc.merge_from(ca),
                        None => node.agg = Some(ca.clone()),
                    }
                }
            }
        }
    }

    /// The root aggregate (everything in the tree), if non-empty.
    pub fn root_aggregate(&self) -> Option<&A> {
        self.nodes[self.root as usize].agg.as_ref()
    }

    /// Listing-3 lookup: aggregate everything overlapping `search` into
    /// `result` via `merge`. Returns the number of nodes visited.
    ///
    /// Faithful to the paper: if a child fully contains the search area the
    /// query recurses into *only* that child; contained children contribute
    /// their pre-aggregated record; partial overlaps recurse. Overlapping
    /// siblings can therefore be double-counted (upper-bound semantics).
    pub fn query(&self, search: &Rect, result: &mut A) -> usize {
        self.query_node(self.root, search, result)
    }

    fn query_node(&self, ni: u32, search: &Rect, result: &mut A) -> usize {
        let node = &self.nodes[ni as usize];
        let mut visited = 1usize;

        if node.is_leaf() {
            for (p, a) in &node.data {
                if search.contains_point(*p) {
                    result.merge_from(a);
                }
            }
            return visited;
        }

        let mut partial: Vec<u32> = Vec::new();
        for &ci in &node.children {
            let c = &self.nodes[ci as usize];
            if c.mbr.contains_rect(search) {
                // Case (a): one child covers the whole search area.
                return visited + self.query_node(ci, search, result);
            }
            if search.contains_rect(&c.mbr) {
                // Case (b): whole subtree qualifies — use the aggregate.
                if let Some(a) = &c.agg {
                    result.merge_from(a);
                }
            } else if search.intersects(&c.mbr) {
                // Case (c): defer.
                partial.push(ci);
            }
        }
        for ci in partial {
            visited += self.query_node(ci, search, result);
        }
        visited
    }
}

/// R* split: returns (entry ordering, split position) for an overflowing
/// entry set, choosing the axis with minimal margin sum and the
/// distribution with minimal overlap (ties: minimal total area).
fn rstar_split(rects: &[Rect]) -> (Vec<usize>, usize) {
    let n = rects.len();
    debug_assert!(n > MAX_ENTRIES);
    let m = MIN_ENTRIES;

    // Candidate orderings: by lower then by upper coordinate, per axis.
    let mut orderings: Vec<(Vec<usize>, f64)> = Vec::with_capacity(4);
    for axis in 0..2 {
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let (va, vb) = if axis == 0 {
                    if by_upper {
                        (rects[a].max.x, rects[b].max.x)
                    } else {
                        (rects[a].min.x, rects[b].min.x)
                    }
                } else if by_upper {
                    (rects[a].max.y, rects[b].max.y)
                } else {
                    (rects[a].min.y, rects[b].min.y)
                };
                va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
            });
            // Margin sum over all legal distributions.
            let mut margin_sum = 0.0;
            for k in m..=(n - m) {
                let (bb1, bb2) = group_bbs(rects, &order, k);
                margin_sum += bb1.margin() + bb2.margin();
            }
            orderings.push((order, margin_sum));
        }
    }
    // Pick the ordering (axis) with the least margin sum.
    let (order, _) = orderings
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one ordering");

    // Within it, pick the distribution minimizing overlap, then area.
    let mut best_k = m;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in m..=(n - m) {
        let (bb1, bb2) = group_bbs(rects, &order, k);
        let key = (bb1.intersection(&bb2).area(), bb1.area() + bb2.area());
        if key < best_key {
            best_key = key;
            best_k = k;
        }
    }
    (order, best_k)
}

fn group_bbs(rects: &[Rect], order: &[usize], k: usize) -> (Rect, Rect) {
    let mut bb1 = Rect::empty();
    for &i in &order[..k] {
        bb1 = bb1.union(&rects[i]);
    }
    let mut bb2 = Rect::empty();
    for &i in &order[k..] {
        bb2 = bb2.union(&rects[i]);
    }
    (bb1, bb2)
}

/// A simple count aggregate, used in tests and as a building block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountAgg(pub u64);

impl Aggregate for CountAgg {
    fn merge_from(&mut self, other: &Self) {
        self.0 += other.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: u32) -> Vec<Point> {
        (0..n)
            .flat_map(|x| (0..n).map(move |y| Point::new(x as f64, y as f64)))
            .collect()
    }

    fn build(points: &[Point]) -> ARTree<CountAgg> {
        let mut t = ARTree::new();
        for &p in points {
            t.insert(p, CountAgg(1));
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t: ARTree<CountAgg> = ARTree::new();
        assert!(t.is_empty());
        assert!(t.root_aggregate().is_none());
        let mut acc = CountAgg(0);
        t.query(&Rect::from_bounds(0.0, 0.0, 1.0, 1.0), &mut acc);
        assert_eq!(acc.0, 0);
    }

    #[test]
    fn root_aggregate_counts_everything() {
        let t = build(&grid_points(20));
        assert_eq!(t.len(), 400);
        assert_eq!(t.root_aggregate(), Some(&CountAgg(400)));
        assert!(t.height() >= 2);
    }

    #[test]
    fn nodes_respect_fanout() {
        let t = build(&grid_points(25));
        for n in &t.nodes {
            assert!(
                n.num_entries() <= MAX_ENTRIES,
                "node has {} entries",
                n.num_entries()
            );
        }
    }

    #[test]
    fn query_whole_space_counts_all() {
        let t = build(&grid_points(20));
        let mut acc = CountAgg(0);
        t.query(&Rect::from_bounds(-1.0, -1.0, 30.0, 30.0), &mut acc);
        assert_eq!(acc.0, 400);
    }

    #[test]
    fn query_counts_are_upper_bounds_and_exact_on_separated_data() {
        // Two well-separated clusters: no node overlap, so Listing 3 is
        // exact here.
        let mut pts = grid_points(10);
        pts.extend(
            (0..100).map(|i| Point::new(1000.0 + (i % 10) as f64, 1000.0 + (i / 10) as f64)),
        );
        let t = build(&pts);
        let mut acc = CountAgg(0);
        t.query(&Rect::from_bounds(999.0, 999.0, 1010.0, 1010.0), &mut acc);
        assert_eq!(acc.0, 100);
        // And in general: never an underestimate.
        let window = Rect::from_bounds(2.5, 2.5, 6.5, 6.5);
        let exact = grid_points(10)
            .iter()
            .filter(|p| window.contains_point(**p))
            .count() as u64;
        let mut acc = CountAgg(0);
        t.query(&window, &mut acc);
        assert!(acc.0 >= exact, "acc {} < exact {exact}", acc.0);
    }

    #[test]
    fn listing3_point_queries_may_be_inexact_but_bounded() {
        // Listing 3's case (a) recurses into only the FIRST child whose
        // region contains the search area. When sibling MBRs overlap on the
        // query, the result can be wrong in either direction — exactly the
        // imprecision the paper reports for the aRTree in Figures 14/15.
        // We assert the result is sane (≤ total) and that a window clear of
        // cluster boundaries is exact.
        let t = build(&grid_points(20));
        let mut acc = CountAgg(0);
        t.query(&Rect::from_bounds(5.0, 7.0, 5.0, 7.0), &mut acc);
        assert!(acc.0 <= t.len() as u64);

        // Separated data: exact.
        let far: Vec<Point> = (0..50)
            .map(|i| Point::new(10_000.0 + i as f64, 5.0))
            .collect();
        let mut t2 = build(&grid_points(10));
        for &p in &far {
            t2.insert(p, CountAgg(1));
        }
        let mut acc2 = CountAgg(0);
        t2.query(&Rect::from_bounds(9_999.0, 0.0, 20_000.0, 10.0), &mut acc2);
        assert_eq!(acc2.0, 50);
    }

    #[test]
    fn aggregates_consistent_after_many_splits() {
        // Clustered insert order stresses choose_subtree + splits.
        let mut pts = Vec::new();
        for c in 0..5 {
            for i in 0..200 {
                pts.push(Point::new(
                    (c * 100) as f64 + (i % 14) as f64 * 0.5,
                    (c * 50) as f64 + (i / 14) as f64 * 0.7,
                ));
            }
        }
        let t = build(&pts);
        assert_eq!(t.root_aggregate(), Some(&CountAgg(1000)));
        // Every internal node's aggregate equals the sum of its children's.
        for n in &t.nodes {
            if !n.is_leaf() {
                let sum: u64 = n
                    .children
                    .iter()
                    .filter_map(|&c| t.nodes[c as usize].agg.map(|a| a.0))
                    .sum();
                assert_eq!(n.agg.map(|a| a.0), Some(sum));
            }
        }
    }

    #[test]
    fn disjoint_query_returns_zero() {
        let t = build(&grid_points(10));
        let mut acc = CountAgg(0);
        t.query(&Rect::from_bounds(100.0, 100.0, 110.0, 110.0), &mut acc);
        assert_eq!(acc.0, 0);
    }

    #[test]
    fn memory_accounting() {
        let t = build(&grid_points(20));
        let bytes = t.memory_bytes(40);
        // 400 data entries × (16 + 40) alone is 22400.
        assert!(bytes > 22_000, "bytes {bytes}");
    }

    #[test]
    fn visited_node_count_small_for_point_queries() {
        let t = build(&grid_points(32)); // 1024 points
        let mut acc = CountAgg(0);
        let visited = t.query(&Rect::from_bounds(3.0, 3.0, 3.9, 3.9), &mut acc);
        assert!(
            visited < t.num_nodes() / 2,
            "visited {visited} of {}",
            t.num_nodes()
        );
    }
}
