//! Query workloads (§4.1).
//!
//! "As a base workload, we build a query containing each polygon once. For
//! the skewed workload, we select 10 % of neighborhoods uniformly at random
//! and query them multiple times. We select 7 aggregates, requesting each
//! column at least once, as query output."

use crate::schema::Schema;
use gb_common::rng::{derive_seed, rng_from_seed};
use gb_geom::Polygon;
use rand::seq::SliceRandom;

/// A non-holistic aggregate function (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    /// Computed as sum/count (§3.4).
    Avg,
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// One requested output aggregate: a function over a column.
///
/// `Count` ignores the column (any index is accepted; use 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggRequest {
    pub func: AggFunc,
    pub column: usize,
}

impl AggRequest {
    pub fn new(func: AggFunc, column: usize) -> Self {
        AggRequest { func, column }
    }
}

/// The set of aggregates a query extracts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggSpec {
    pub requests: Vec<AggRequest>,
}

impl AggSpec {
    pub fn new(requests: Vec<AggRequest>) -> Self {
        AggSpec { requests }
    }

    /// Just `COUNT(*)`.
    pub fn count_only() -> Self {
        AggSpec::new(vec![AggRequest::new(AggFunc::Count, 0)])
    }

    /// `k` aggregates cycling through the schema's columns and the
    /// functions sum/min/max/avg — the Figure-10 "number of aggregates"
    /// axis.
    pub fn k_aggregates(schema: &Schema, k: usize) -> Self {
        assert!(!schema.is_empty(), "need at least one column");
        const FUNCS: [AggFunc; 4] = [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg];
        let requests = (0..k)
            .map(|i| AggRequest::new(FUNCS[i % FUNCS.len()], i % schema.len()))
            .collect();
        AggSpec::new(requests)
    }

    /// The paper's default: 7 aggregates touching every column at least
    /// once (only valid for schemas with ≤ 7 columns).
    pub fn paper_default(schema: &Schema) -> Self {
        AggSpec::k_aggregates(schema, 7.max(schema.len()))
    }

    /// Number of requested aggregates.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Largest referenced column index (`None` for pure counts).
    pub fn max_column(&self) -> Option<usize> {
        self.requests
            .iter()
            .filter(|r| r.func != AggFunc::Count)
            .map(|r| r.column)
            .max()
    }
}

/// One spatial aggregation query: a polygon plus requested aggregates.
#[derive(Debug, Clone)]
pub struct Query {
    pub polygon: Polygon,
    pub spec: AggSpec,
}

/// A sequence of queries (executed in order; order matters for the cache).
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub queries: Vec<Query>,
}

impl Workload {
    /// The base workload: every polygon exactly once.
    pub fn base(polygons: &[Polygon], spec: &AggSpec) -> Self {
        Workload {
            queries: polygons
                .iter()
                .map(|p| Query {
                    polygon: p.clone(),
                    spec: spec.clone(),
                })
                .collect(),
        }
    }

    /// The skewed workload: `fraction` of the polygons (uniformly sampled
    /// with `seed`), each queried `repeats` times.
    pub fn skewed(
        polygons: &[Polygon],
        fraction: f64,
        repeats: usize,
        spec: &AggSpec,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let mut rng = rng_from_seed(derive_seed(seed, "skewed_workload"));
        let k = ((polygons.len() as f64 * fraction).round() as usize).max(1);
        let mut chosen: Vec<&Polygon> = polygons.iter().collect();
        chosen.shuffle(&mut rng);
        chosen.truncate(k);

        let mut queries = Vec::with_capacity(k * repeats);
        for _ in 0..repeats {
            for p in &chosen {
                queries.push(Query {
                    polygon: (*p).clone(),
                    spec: spec.clone(),
                });
            }
        }
        Workload { queries }
    }

    /// Concatenate workloads (the paper's "base + 4× skewed" combination).
    pub fn concat(parts: &[&Workload]) -> Self {
        Workload {
            queries: parts
                .iter()
                .flat_map(|w| w.queries.iter().cloned())
                .collect(),
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use gb_geom::Rect;

    fn polys(n: usize) -> Vec<Polygon> {
        (0..n)
            .map(|i| Polygon::rectangle(Rect::from_bounds(i as f64, 0.0, i as f64 + 0.5, 0.5)))
            .collect()
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::f64("a"),
            ColumnDef::f64("b"),
            ColumnDef::f64("c"),
        ])
    }

    #[test]
    fn k_aggregates_counts_and_coverage() {
        let s = schema();
        for k in [1usize, 2, 4, 8] {
            let spec = AggSpec::k_aggregates(&s, k);
            assert_eq!(spec.len(), k);
            for r in &spec.requests {
                assert!(r.column < s.len());
            }
        }
        // k ≥ columns touches every column.
        let spec = AggSpec::k_aggregates(&s, 7);
        let mut touched: Vec<usize> = spec.requests.iter().map(|r| r.column).collect();
        touched.sort_unstable();
        touched.dedup();
        assert_eq!(touched, vec![0, 1, 2]);
    }

    #[test]
    fn base_workload_one_query_per_polygon() {
        let w = Workload::base(&polys(5), &AggSpec::count_only());
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn skewed_workload_repeats_subset() {
        let p = polys(50);
        let w = Workload::skewed(&p, 0.1, 4, &AggSpec::count_only(), 3);
        assert_eq!(w.len(), 5 * 4);
        // Only 5 distinct polygons appear.
        let mut firsts: Vec<f64> = w.queries.iter().map(|q| q.polygon.bbox().min.x).collect();
        firsts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        firsts.dedup();
        assert_eq!(firsts.len(), 5);
        // Deterministic per seed.
        let w2 = Workload::skewed(&p, 0.1, 4, &AggSpec::count_only(), 3);
        assert_eq!(
            w.queries[0].polygon.exterior(),
            w2.queries[0].polygon.exterior()
        );
    }

    #[test]
    fn concat_preserves_order() {
        let p = polys(3);
        let base = Workload::base(&p, &AggSpec::count_only());
        let skew = Workload::skewed(&p, 0.34, 2, &AggSpec::count_only(), 1);
        let all = Workload::concat(&[&base, &skew]);
        assert_eq!(all.len(), base.len() + skew.len());
        assert_eq!(
            all.queries[0].polygon.exterior(),
            base.queries[0].polygon.exterior()
        );
    }

    #[test]
    fn spec_max_column() {
        assert_eq!(AggSpec::count_only().max_column(), None);
        let s = schema();
        assert_eq!(AggSpec::k_aggregates(&s, 8).max_column(), Some(2));
    }
}
