//! Column schemas for point tables.
//!
//! §2: points are `P(l, v₀, v₁, …, vₙ)` — a location plus numerical or
//! temporal attributes. We model attributes as typed columns; aggregates are
//! computed in `f64` (temporal columns are epoch seconds, whose magnitudes
//! stay well within `f64`'s 53-bit exact-integer range).

/// The physical type of an attribute column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit floating point (monetary amounts, distances, rates).
    F64,
    /// 64-bit signed integer (counts, epoch timestamps).
    I64,
}

/// One attribute column's definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    pub fn f64(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColumnType::F64,
        }
    }

    pub fn i64(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColumnType::I64,
        }
    }
}

/// An ordered set of attribute columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), columns.len(), "duplicate column names");
        Schema { columns }
    }

    /// Number of attribute columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column definitions in order.
    #[inline]
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![ColumnDef::f64("fare"), ColumnDef::i64("passengers")]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("fare"), Some(0));
        assert_eq!(s.index_of("passengers"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.column(1).ty, ColumnType::I64);
    }

    #[test]
    #[should_panic(expected = "duplicate column names")]
    fn rejects_duplicates() {
        Schema::new(vec![ColumnDef::f64("a"), ColumnDef::i64("a")]);
    }

    #[test]
    fn empty_schema_ok() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
