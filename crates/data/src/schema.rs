//! Column schemas for point tables.
//!
//! §2: points are `P(l, v₀, v₁, …, vₙ)` — a location plus numerical or
//! temporal attributes. We model attributes as typed columns; aggregates are
//! computed in `f64` (temporal columns are epoch seconds, whose magnitudes
//! stay well within `f64`'s 53-bit exact-integer range).

/// The physical type of an attribute column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit floating point (monetary amounts, distances, rates).
    F64,
    /// 64-bit signed integer (counts, epoch timestamps).
    I64,
}

/// One attribute column's definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    pub fn f64(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColumnType::F64,
        }
    }

    pub fn i64(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColumnType::I64,
        }
    }
}

/// An ordered set of attribute columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Construct a schema, panicking on duplicate names — for trusted,
    /// programmatic construction. Untrusted input (snapshot files, user
    /// configuration) should go through [`Schema::try_new`].
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        match Schema::try_new(columns) {
            Ok(s) => s,
            Err(e) => panic!("duplicate column names: {e}"),
        }
    }

    /// Construct a schema, returning [`crate::DataError::DuplicateColumn`]
    /// when two columns share a name.
    pub fn try_new(columns: Vec<ColumnDef>) -> Result<Self, crate::DataError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(crate::DataError::DuplicateColumn {
                    column: c.name.clone(),
                });
            }
        }
        Ok(Schema { columns })
    }

    /// Number of attribute columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column definitions in order.
    #[inline]
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Like [`Schema::index_of`], but a typed error for the miss — use
    /// this wherever the name comes from outside the program (queries,
    /// CLI flags, files) so the failure is reportable, not a panic.
    pub fn require(&self, name: &str) -> Result<usize, crate::DataError> {
        self.index_of(name)
            .ok_or_else(|| crate::DataError::UnknownColumn {
                column: name.to_string(),
            })
    }

    /// Definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![ColumnDef::f64("fare"), ColumnDef::i64("passengers")]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("fare"), Some(0));
        assert_eq!(s.index_of("passengers"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.column(1).ty, ColumnType::I64);
        assert_eq!(s.require("fare"), Ok(0));
        assert_eq!(
            s.require("nope"),
            Err(crate::DataError::UnknownColumn {
                column: "nope".into()
            })
        );
    }

    #[test]
    fn try_new_reports_duplicates() {
        let err = Schema::try_new(vec![ColumnDef::f64("a"), ColumnDef::i64("a")]).unwrap_err();
        assert_eq!(
            err,
            crate::DataError::DuplicateColumn { column: "a".into() }
        );
        assert!(Schema::try_new(vec![ColumnDef::f64("a"), ColumnDef::i64("b")]).is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate column names")]
    fn rejects_duplicates() {
        Schema::new(vec![ColumnDef::f64("a"), ColumnDef::i64("a")]);
    }

    #[test]
    fn empty_schema_ok() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
