//! Typed errors for the data substrate.
//!
//! A serving engine must treat a malformed filter or schema as a bad
//! *request*, not a reason to die: the old `panic!("no column named …")`
//! in [`crate::Filter::on`] took the whole process down with one typo.
//! Fallible lookups now return [`DataError`] and callers decide — repro
//! binaries print the message and exit 1, tests `unwrap()`, servers would
//! map it to a 4xx.

use std::fmt;

/// An invalid schema, filter, or column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column name that does not exist in the schema.
    UnknownColumn { column: String },
    /// Two columns in one schema share a name.
    DuplicateColumn { column: String },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn { column } => write!(f, "no column named {column:?}"),
            DataError::DuplicateColumn { column } => {
                write!(f, "duplicate column name {column:?} in schema")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = DataError::UnknownColumn {
            column: "velocity".into(),
        };
        assert!(e.to_string().contains("velocity"));
        let e = DataError::DuplicateColumn { column: "a".into() };
        assert!(e.to_string().contains("duplicate"));
    }
}
