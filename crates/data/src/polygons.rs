//! Query-polygon generators (§4.1).
//!
//! "Unless otherwise specified, the queries consist of polygons representing
//! NYC neighborhoods" — we synthesize ~195 simple convex polygons
//! ("often simple quadrilaterals or pentagons", §4.2) concentrated on the
//! data hotspots. For the tweets dataset we synthesize 49 state-like
//! polygons tiling the US box and 51 random rectangles (Figure 15), and for
//! the selectivity sweep (Figure 12) a polygon sized to contain a target
//! fraction of the data.

use crate::datasets::{nyc_domain, us_domain};
use crate::table::{BaseTable, Rows};
use gb_common::rng::{derive_seed, rng_from_seed};
use gb_geom::{convex_hull, Point, Polygon, Rect};
use rand::rngs::StdRng;
use rand::Rng;

/// A jittered convex polygon with `verts` hull seeds around `center`.
fn convex_blob(
    rng: &mut StdRng,
    center: Point,
    radius: f64,
    verts: usize,
    domain: &Rect,
) -> Polygon {
    loop {
        let pts: Vec<Point> = (0..verts.max(4))
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let r: f64 = rng.gen_range(0.35 * radius..radius);
                Point::new(
                    (center.x + r * a.cos()).clamp(domain.min.x, domain.max.x),
                    (center.y + r * a.sin()).clamp(domain.min.y, domain.max.y),
                )
            })
            .collect();
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            let poly = Polygon::new(hull);
            if poly.area() > 1e-9 {
                return poly;
            }
        }
        // Degenerate sample (all clamped onto one border): retry.
    }
}

/// ~`count` neighborhood-like polygons over the NYC hotspots.
///
/// Polygons are smaller where the data is dense (downtown) and larger in
/// the suburbs, mimicking NYC neighborhood tabulation areas.
pub fn neighborhoods(count: usize, seed: u64) -> Vec<Polygon> {
    let mut rng = rng_from_seed(derive_seed(seed, "neighborhoods"));
    let domain = nyc_domain();
    // Reuse the data hotspot mixture for polygon placement: most polygons
    // in Manhattan/Brooklyn, few in the suburbs.
    let anchors: Vec<(Point, Point, f64, f64)> = vec![
        // (a, b, spread, weight) mirroring datasets::nyc_hotspots
        (Point::new(22.0, 28.0), Point::new(30.0, 46.0), 1.6, 0.45),
        (Point::new(30.0, 20.0), Point::new(30.0, 20.0), 3.5, 0.18),
        (Point::new(40.0, 30.0), Point::new(40.0, 30.0), 3.8, 0.10),
        (Point::new(47.0, 17.0), Point::new(47.0, 17.0), 1.2, 0.05),
        (Point::new(36.0, 37.0), Point::new(36.0, 37.0), 1.0, 0.05),
        (Point::new(27.0, 52.0), Point::new(27.0, 52.0), 2.8, 0.07),
        (Point::new(30.0, 30.0), Point::new(30.0, 30.0), 17.0, 0.10),
    ];
    let total_w: f64 = anchors.iter().map(|a| a.3).sum();

    (0..count)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total_w);
            let mut pick = &anchors[anchors.len() - 1];
            for a in &anchors {
                if x < a.3 {
                    pick = a;
                    break;
                }
                x -= a.3;
            }
            let t: f64 = rng.gen();
            let base = pick.0 + (pick.1 - pick.0) * t;
            let center = Point::new(
                base.x + rng.gen_range(-pick.2..pick.2),
                base.y + rng.gen_range(-pick.2..pick.2),
            );
            // Dense areas get ~1 km polygons, suburbs up to ~5 km.
            let radius = rng.gen_range(0.6..1.6) * (1.0 + pick.2 / 4.0);
            let verts = rng.gen_range(4..=6); // quadrilaterals/pentagons
            convex_blob(&mut rng, center, radius, verts, &domain)
        })
        .collect()
}

/// 49 state-like polygons tiling the US-box (7×7 jittered grid).
pub fn us_states(seed: u64) -> Vec<Polygon> {
    let mut rng = rng_from_seed(derive_seed(seed, "us_states"));
    let domain = us_domain();
    let (nx, ny) = (7usize, 7usize);
    let cw = domain.width() / nx as f64;
    let ch = domain.height() / ny as f64;
    let mut out = Vec::with_capacity(nx * ny);
    for gx in 0..nx {
        for gy in 0..ny {
            let cx = domain.min.x + (gx as f64 + 0.5) * cw;
            let cy = domain.min.y + (gy as f64 + 0.5) * ch;
            let center = Point::new(
                cx + rng.gen_range(-0.15 * cw..0.15 * cw),
                cy + rng.gen_range(-0.15 * ch..0.15 * ch),
            );
            let radius = 0.52 * cw.min(ch);
            let verts = rng.gen_range(5..=8);
            out.push(convex_blob(&mut rng, center, radius, verts, &domain));
        }
    }
    out
}

/// Large country-like polygons tiling the Americas box (5×5 jittered
/// grid), used as the OSM dataset's query set ("query them with polygons
/// representing countries", §4.1).
pub fn countries(seed: u64) -> Vec<Polygon> {
    let mut rng = rng_from_seed(derive_seed(seed, "countries"));
    let domain = crate::datasets::americas_domain();
    let (nx, ny) = (5usize, 5usize);
    let cw = domain.width() / nx as f64;
    let ch = domain.height() / ny as f64;
    let mut out = Vec::with_capacity(nx * ny);
    for gx in 0..nx {
        for gy in 0..ny {
            let cx = domain.min.x + (gx as f64 + 0.5) * cw;
            let cy = domain.min.y + (gy as f64 + 0.5) * ch;
            let center = Point::new(
                cx + rng.gen_range(-0.1 * cw..0.1 * cw),
                cy + rng.gen_range(-0.1 * ch..0.1 * ch),
            );
            let radius = 0.55 * cw.min(ch);
            let verts = rng.gen_range(5..=9);
            out.push(convex_blob(&mut rng, center, radius, verts, &domain));
        }
    }
    out
}

/// `count` random rectangles inside `domain` (Figure 15's second workload),
/// with areas between ~0.1 % and ~4 % of the domain.
pub fn random_rects(count: usize, domain: &Rect, seed: u64) -> Vec<Rect> {
    let mut rng = rng_from_seed(derive_seed(seed, "rects"));
    (0..count)
        .map(|_| {
            let w = domain.width() * rng.gen_range(0.03..0.2);
            let h = domain.height() * rng.gen_range(0.03..0.2);
            let x0 = rng.gen_range(domain.min.x..domain.max.x - w);
            let y0 = rng.gen_range(domain.min.y..domain.max.y - h);
            Rect::from_bounds(x0, y0, x0 + w, y0 + h)
        })
        .collect()
}

/// A rectangle polygon containing approximately `target` fraction of the
/// table's rows (Figure 12's selectivity workload).
///
/// Grows a square around the weighted data center by binary search on its
/// half-width. The returned selectivity is exact for the final polygon.
pub fn selectivity_polygon(base: &BaseTable, target: f64) -> (Polygon, f64) {
    assert!((0.0..=1.0).contains(&target));
    let n = base.num_rows();
    assert!(n > 0, "empty table");
    // Median-ish center: mean is fine for our unimodal-cluster mixes.
    // These run single-threaded over a fixed row order during dataset
    // generation, so the fold is deterministic without the kernels.
    let cx = base.xs().iter().sum::<f64>() / n as f64; // gb-lint: allow(float-fold) -- serial dataset generation
    let cy = base.ys().iter().sum::<f64>() / n as f64; // gb-lint: allow(float-fold) -- serial dataset generation

    let domain = base.grid().domain();
    let max_half = domain.width().max(domain.height());
    let count_in = |half: f64| -> usize {
        let r = Rect::from_bounds(cx - half, cy - half, cx + half, cy + half);
        base.xs()
            .iter()
            .zip(base.ys())
            .filter(|(&x, &y)| r.contains_point(Point::new(x, y)))
            .count()
    };

    let mut lo = 0.0f64;
    let mut hi = max_half;
    for _ in 0..48 {
        let mid = (lo + hi) * 0.5;
        if (count_in(mid) as f64) < target * n as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let half = hi;
    let rect = Rect::from_bounds(cx - half, cy - half, cx + half, cy + half).intersection(&domain);
    let achieved = count_in(half) as f64 / n as f64;
    (Polygon::rectangle(rect), achieved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::nyc_taxi;
    use crate::extract::{extract, CleaningRules};

    #[test]
    fn neighborhoods_are_simple_and_in_domain() {
        let polys = neighborhoods(100, 21);
        assert_eq!(polys.len(), 100);
        let domain = nyc_domain();
        for p in &polys {
            assert!(p.exterior().len() >= 3 && p.exterior().len() <= 8);
            assert!(
                domain.contains_rect(&p.bbox()),
                "bbox {:?} escapes",
                p.bbox()
            );
            assert!(p.area() > 0.0);
        }
    }

    #[test]
    fn neighborhoods_concentrate_on_hotspots() {
        let polys = neighborhoods(300, 5);
        let strip = Rect::from_bounds(16.0, 22.0, 36.0, 52.0);
        let frac = polys.iter().filter(|p| strip.intersects(&p.bbox())).count() as f64
            / polys.len() as f64;
        assert!(frac > 0.5, "hotspot polygon fraction {frac}");
    }

    #[test]
    fn states_tile_the_us() {
        let states = us_states(9);
        assert_eq!(states.len(), 49);
        for s in &states {
            assert!(us_domain().contains_rect(&s.bbox()));
            assert!(s.exterior().len() >= 3);
        }
        // They are big: average bbox area a few percent of the domain.
        let avg = states.iter().map(|s| s.area()).sum::<f64>() / 49.0;
        assert!(avg > us_domain().area() * 0.002, "avg area {avg}");
    }

    #[test]
    fn rects_are_inside_and_sized() {
        let rects = random_rects(51, &us_domain(), 13);
        assert_eq!(rects.len(), 51);
        for r in &rects {
            assert!(us_domain().contains_rect(r));
            let frac = r.area() / us_domain().area();
            assert!(frac > 0.0005 && frac < 0.05, "area fraction {frac}");
        }
    }

    #[test]
    fn selectivity_polygon_hits_target() {
        let ds = nyc_taxi(30_000, 3);
        let ex = extract(&ds.raw, ds.grid, &CleaningRules::none(), None);
        for target in [0.01, 0.1, 0.5, 0.9] {
            let (_poly, achieved) = selectivity_polygon(&ex.base, target);
            assert!(
                (achieved - target).abs() < 0.05,
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = neighborhoods(10, 77);
        let b = neighborhoods(10, 77);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.exterior(), q.exterior());
        }
        assert_ne!(
            neighborhoods(10, 77)[0].exterior(),
            neighborhoods(10, 78)[0].exterior()
        );
    }
}
