//! Data substrate for the GeoBlocks reproduction: columnar tables, the
//! extract phase, and synthetic datasets / polygons / workloads replacing
//! the paper's proprietary inputs (§3.3, §4.1 — see DESIGN.md for the
//! substitution rationale).

pub mod datasets;
pub mod error;
pub mod extract;
pub mod filter;
pub mod polygons;
pub mod schema;
pub mod table;
pub mod workload;

pub use error::DataError;
pub use extract::{extract, extract_filtered, CleaningRules, Extract, ExtractStats};
pub use filter::{CmpOp, Filter, Predicate};
pub use schema::{ColumnDef, ColumnType, Schema};
pub use table::{BaseTable, Column, RawTable, Rows};
pub use workload::{AggFunc, AggRequest, AggSpec, Query, Workload};
