//! Filter predicates over attribute columns.
//!
//! §2's query template allows `[AND filterCondition]*`; §3.3 and §4.4 build
//! GeoBlocks per filter predicate (e.g. `distance >= 4`,
//! `passenger_cnt == 1`). A [`Filter`] is a conjunction of per-column
//! comparisons, evaluated row-at-a-time against any [`Rows`] table.

use crate::error::DataError;
use crate::table::Rows;

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    #[inline]
    fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A single column comparison, e.g. `distance >= 4`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub column: usize,
    pub op: CmpOp,
    pub value: f64,
}

impl Predicate {
    pub fn new(column: usize, op: CmpOp, value: f64) -> Self {
        Predicate { column, op, value }
    }

    #[inline]
    pub fn matches<T: Rows + ?Sized>(&self, table: &T, row: usize) -> bool {
        self.op.eval(table.value_f64(row, self.column), self.value)
    }
}

/// A conjunction of predicates. The empty filter matches everything.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// The match-all filter.
    pub fn all() -> Self {
        Filter::default()
    }

    /// A filter from predicates (AND semantics).
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Filter { predicates }
    }

    /// Convenience: a single-predicate filter built by column name.
    ///
    /// Returns [`DataError::UnknownColumn`] for a name missing from the
    /// table's schema. (This used to panic — one malformed filter string
    /// would kill a serving process.)
    pub fn on<T: Rows + ?Sized>(
        table: &T,
        column: &str,
        op: CmpOp,
        value: f64,
    ) -> Result<Self, DataError> {
        let idx = table.schema().require(column)?;
        Ok(Filter::new(vec![Predicate::new(idx, op, value)]))
    }

    /// The predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// True if the filter matches every row trivially.
    pub fn is_trivial(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Evaluate the conjunction on one row.
    #[inline]
    pub fn matches<T: Rows + ?Sized>(&self, table: &T, row: usize) -> bool {
        self.predicates.iter().all(|p| p.matches(table, row))
    }

    /// Indices of all matching rows (ascending).
    pub fn matching_rows<T: Rows + ?Sized>(&self, table: &T) -> Vec<u32> {
        (0..table.num_rows() as u32)
            .filter(|&i| self.matches(table, i as usize))
            .collect()
    }

    /// Fraction of rows matching — the paper's filter selectivity `s`.
    pub fn selectivity<T: Rows + ?Sized>(&self, table: &T) -> f64 {
        if table.num_rows() == 0 {
            return 0.0;
        }
        self.matching_rows(table).len() as f64 / table.num_rows() as f64
    }
}

impl std::fmt::Display for Filter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("TRUE");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "col{} {} {}", p.column, p.op, p.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::RawTable;
    use gb_geom::Point;

    fn table() -> RawTable {
        let mut t = RawTable::new(Schema::new(vec![
            ColumnDef::f64("dist"),
            ColumnDef::i64("pax"),
        ]));
        for (d, p) in [(1.0, 1.0), (4.0, 2.0), (5.5, 1.0), (0.5, 3.0), (9.0, 1.0)] {
            t.push_row(Point::new(0.0, 0.0), &[d, p]);
        }
        t
    }

    #[test]
    fn single_predicate() {
        let t = table();
        let f = Filter::on(&t, "dist", CmpOp::Ge, 4.0).unwrap();
        assert_eq!(f.matching_rows(&t), vec![1, 2, 4]);
        assert!((f.selectivity(&t) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn conjunction() {
        let t = table();
        let f = Filter::new(vec![
            Predicate::new(0, CmpOp::Ge, 4.0),
            Predicate::new(1, CmpOp::Eq, 1.0),
        ]);
        assert_eq!(f.matching_rows(&t), vec![2, 4]);
    }

    #[test]
    fn trivial_filter_matches_all() {
        let t = table();
        let f = Filter::all();
        assert!(f.is_trivial());
        assert_eq!(f.matching_rows(&t).len(), 5);
        assert_eq!(f.selectivity(&t), 1.0);
    }

    #[test]
    fn all_operators() {
        let t = table();
        assert_eq!(
            Filter::on(&t, "pax", CmpOp::Eq, 1.0)
                .unwrap()
                .matching_rows(&t),
            vec![0, 2, 4]
        );
        assert_eq!(
            Filter::on(&t, "pax", CmpOp::Ne, 1.0)
                .unwrap()
                .matching_rows(&t),
            vec![1, 3]
        );
        assert_eq!(
            Filter::on(&t, "pax", CmpOp::Gt, 1.0)
                .unwrap()
                .matching_rows(&t),
            vec![1, 3]
        );
        assert_eq!(
            Filter::on(&t, "dist", CmpOp::Lt, 1.0)
                .unwrap()
                .matching_rows(&t),
            vec![3]
        );
        assert_eq!(
            Filter::on(&t, "dist", CmpOp::Le, 1.0)
                .unwrap()
                .matching_rows(&t),
            vec![0, 3]
        );
    }

    #[test]
    fn display_formats() {
        let f = Filter::new(vec![
            Predicate::new(0, CmpOp::Ge, 4.0),
            Predicate::new(1, CmpOp::Eq, 1.0),
        ]);
        assert_eq!(format!("{f}"), "col0 >= 4 AND col1 == 1");
        assert_eq!(format!("{}", Filter::all()), "TRUE");
    }

    #[test]
    fn unknown_column_is_a_typed_error_not_a_panic() {
        let t = table();
        let err = Filter::on(&t, "missing", CmpOp::Eq, 0.0).unwrap_err();
        assert_eq!(
            err,
            crate::DataError::UnknownColumn {
                column: "missing".into()
            }
        );
        assert!(err.to_string().contains("missing"));
    }
}
