//! Columnar point tables: raw input and sorted base data.
//!
//! §3.3 / Figure 5: the pipeline is *extract* (clean raw data, compute
//! 1-D spatial keys, sort once per dataset) then *build* (filter +
//! aggregate per GeoBlock). [`RawTable`] is the dirty input; [`BaseTable`]
//! is the cleaned, key-sorted columnar base data every index builds from.
//! "We keep all data in a columnar layout" (§4.1).

use crate::schema::{ColumnType, Schema};
use gb_cell::Grid;
use gb_geom::Point;

/// A typed attribute column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    F64(Vec<f64>),
    I64(Vec<i64>),
}

impl Column {
    /// An empty column of the given type.
    pub fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::F64 => Column::F64(Vec::new()),
            ColumnType::I64 => Column::I64(Vec::new()),
        }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row` widened to `f64` (exact for i64 up to 2^53).
    #[inline]
    pub fn value_f64(&self, row: usize) -> f64 {
        match self {
            Column::F64(v) => v[row],
            Column::I64(v) => v[row] as f64,
        }
    }

    /// Append a value given as `f64` (truncates toward zero for I64).
    #[inline]
    pub fn push_f64(&mut self, value: f64) {
        match self {
            Column::F64(v) => v.push(value),
            Column::I64(v) => v.push(value as i64),
        }
    }

    /// Apply a permutation: `out[i] = self[perm[i]]`.
    fn permuted(&self, perm: &[u32]) -> Column {
        match self {
            Column::F64(v) => Column::F64(perm.iter().map(|&i| v[i as usize]).collect()),
            Column::I64(v) => Column::I64(perm.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Gather the rows in `rows` (used by the filtered-build paths).
    fn gathered(&self, rows: &[u32]) -> Column {
        self.permuted(rows)
    }

    /// Heap bytes used.
    pub fn memory_bytes(&self) -> usize {
        8 * self.len()
    }
}

/// Read access to rows of a columnar table — shared by filters and
/// aggregators across [`RawTable`] and [`BaseTable`].
pub trait Rows {
    /// Number of rows.
    fn num_rows(&self) -> usize;
    /// Attribute value (widened to f64) of `row` in column `col`.
    fn value_f64(&self, row: usize, col: usize) -> f64;
    /// The schema.
    fn schema(&self) -> &Schema;
    /// The location of `row`.
    fn location(&self, row: usize) -> Point;
}

/// Unsorted, possibly dirty input data (pre-extract).
#[derive(Debug, Clone)]
pub struct RawTable {
    schema: Schema,
    xs: Vec<f64>,
    ys: Vec<f64>,
    columns: Vec<Column>,
}

impl RawTable {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.columns().iter().map(|c| Column::new(c.ty)).collect();
        RawTable {
            schema,
            xs: Vec::new(),
            ys: Vec::new(),
            columns,
        }
    }

    /// Append a row. `values` must match the schema arity.
    pub fn push_row(&mut self, location: Point, values: &[f64]) {
        assert_eq!(values.len(), self.schema.len(), "row arity mismatch");
        self.xs.push(location.x);
        self.ys.push(location.y);
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push_f64(v);
        }
    }

    /// Reserve capacity for `n` additional rows.
    pub fn reserve(&mut self, n: usize) {
        self.xs.reserve(n);
        self.ys.reserve(n);
    }

    /// The attribute columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// X coordinates of all rows.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Y coordinates of all rows.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Heap bytes of the table payload.
    pub fn memory_bytes(&self) -> usize {
        16 * self.xs.len() + self.columns.iter().map(Column::memory_bytes).sum::<usize>()
    }
}

impl Rows for RawTable {
    #[inline]
    fn num_rows(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    fn value_f64(&self, row: usize, col: usize) -> f64 {
        self.columns[col].value_f64(row)
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    #[inline]
    fn location(&self, row: usize) -> Point {
        Point::new(self.xs[row], self.ys[row])
    }
}

/// Cleaned base data, sorted by the 1-D spatial key (leaf cell id).
///
/// This is what the extract phase produces once per dataset and what every
/// index (GeoBlocks and baselines alike) is built from. Keys are raw
/// [`gb_cell::CellId`] leaf values, so key order == space-filling-curve
/// order and each block-level cell's rows form one contiguous run.
#[derive(Debug, Clone)]
pub struct BaseTable {
    grid: Grid,
    schema: Schema,
    keys: Vec<u64>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    columns: Vec<Column>,
}

impl BaseTable {
    /// Assemble from parts; validates sortedness and arity.
    pub(crate) fn from_parts(
        grid: Grid,
        schema: Schema,
        keys: Vec<u64>,
        xs: Vec<f64>,
        ys: Vec<f64>,
        columns: Vec<Column>,
    ) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        assert_eq!(keys.len(), xs.len());
        assert_eq!(keys.len(), ys.len());
        for c in &columns {
            assert_eq!(c.len(), keys.len());
        }
        assert_eq!(columns.len(), schema.len());
        BaseTable {
            grid,
            schema,
            keys,
            xs,
            ys,
            columns,
        }
    }

    /// The grid the keys were generated on.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Sorted leaf-cell keys, one per row.
    #[inline]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// X coordinates (kept for exact ground truth / rectangular indexes).
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Y coordinates.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The attribute columns.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// First row whose key is ≥ `key` (lower bound).
    #[inline]
    pub fn lower_bound(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k < key)
    }

    /// First row whose key is > `key` (upper bound).
    #[inline]
    pub fn upper_bound(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k <= key)
    }

    /// Heap bytes of the base data (keys + coordinates + columns) — the
    /// denominator of the paper's "relative overhead" (Figure 11b).
    pub fn memory_bytes(&self) -> usize {
        8 * self.keys.len()
            + 16 * self.xs.len()
            + self.columns.iter().map(Column::memory_bytes).sum::<usize>()
    }

    /// A new `BaseTable` with only the rows in `rows` (already key-sorted
    /// because `rows` is ascending). Used by incremental filtered builds.
    pub fn gather(&self, rows: &[u32]) -> BaseTable {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        BaseTable {
            grid: self.grid,
            schema: self.schema.clone(),
            keys: rows.iter().map(|&i| self.keys[i as usize]).collect(),
            xs: rows.iter().map(|&i| self.xs[i as usize]).collect(),
            ys: rows.iter().map(|&i| self.ys[i as usize]).collect(),
            columns: self.columns.iter().map(|c| c.gathered(rows)).collect(),
        }
    }

    /// A prefix subset of `n` rows (scaling experiments, Figure 13).
    pub fn truncated(&self, n: usize) -> BaseTable {
        let n = n.min(self.keys.len());
        BaseTable {
            grid: self.grid,
            schema: self.schema.clone(),
            keys: self.keys[..n].to_vec(),
            xs: self.xs[..n].to_vec(),
            ys: self.ys[..n].to_vec(),
            columns: self
                .columns
                .iter()
                .map(|c| match c {
                    Column::F64(v) => Column::F64(v[..n].to_vec()),
                    Column::I64(v) => Column::I64(v[..n].to_vec()),
                })
                .collect(),
        }
    }
}

impl Rows for BaseTable {
    #[inline]
    fn num_rows(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn value_f64(&self, row: usize, col: usize) -> f64 {
        self.columns[col].value_f64(row)
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    #[inline]
    fn location(&self, row: usize) -> Point {
        Point::new(self.xs[row], self.ys[row])
    }
}

/// Sort `(key, row)` pairs and produce the permutation plus sorted keys.
pub(crate) fn sort_permutation(keys: &[u64]) -> (Vec<u64>, Vec<u32>) {
    assert!(keys.len() <= u32::MAX as usize, "row indices stored as u32");
    let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
    perm.sort_unstable_by_key(|&i| keys[i as usize]);
    let sorted = perm.iter().map(|&i| keys[i as usize]).collect();
    (sorted, perm)
}

/// Apply the permutation produced by [`sort_permutation`] to build a
/// [`BaseTable`] out of raw parts.
pub(crate) fn apply_permutation(
    grid: Grid,
    schema: Schema,
    sorted_keys: Vec<u64>,
    perm: &[u32],
    xs: &[f64],
    ys: &[f64],
    columns: &[Column],
) -> BaseTable {
    BaseTable::from_parts(
        grid,
        schema,
        sorted_keys,
        perm.iter().map(|&i| xs[i as usize]).collect(),
        perm.iter().map(|&i| ys[i as usize]).collect(),
        columns.iter().map(|c| c.permuted(perm)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use gb_geom::Rect;

    fn grid() -> Grid {
        Grid::hilbert(Rect::from_bounds(0.0, 0.0, 10.0, 10.0))
    }

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::f64("v"), ColumnDef::i64("n")])
    }

    #[test]
    fn raw_table_push_and_read() {
        let mut t = RawTable::new(schema());
        t.push_row(Point::new(1.0, 2.0), &[3.5, 7.0]);
        t.push_row(Point::new(4.0, 5.0), &[1.25, -2.0]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value_f64(0, 0), 3.5);
        assert_eq!(t.value_f64(1, 1), -2.0);
        assert_eq!(t.location(1), Point::new(4.0, 5.0));
        assert_eq!(t.memory_bytes(), 2 * 16 + 2 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn raw_table_rejects_bad_arity() {
        let mut t = RawTable::new(schema());
        t.push_row(Point::new(0.0, 0.0), &[1.0]);
    }

    #[test]
    fn i64_column_truncates() {
        let mut c = Column::new(ColumnType::I64);
        c.push_f64(3.9);
        assert_eq!(c.value_f64(0), 3.0);
    }

    #[test]
    fn sort_permutation_orders_keys() {
        let keys = vec![5u64, 1, 9, 1, 3];
        let (sorted, perm) = sort_permutation(&keys);
        assert_eq!(sorted, vec![1, 1, 3, 5, 9]);
        assert_eq!(perm.len(), 5);
        // Permutation actually maps to the sorted order.
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(keys[p as usize], sorted[i]);
        }
    }

    #[test]
    fn base_table_bounds() {
        let g = grid();
        let t = BaseTable::from_parts(
            g,
            Schema::default(),
            vec![1, 3, 3, 7],
            vec![0.0; 4],
            vec![0.0; 4],
            vec![],
        );
        assert_eq!(t.lower_bound(3), 1);
        assert_eq!(t.upper_bound(3), 3);
        assert_eq!(t.lower_bound(0), 0);
        assert_eq!(t.lower_bound(8), 4);
    }

    #[test]
    fn base_table_gather_and_truncate() {
        let g = grid();
        let t = BaseTable::from_parts(
            g,
            schema(),
            vec![1, 3, 5, 7],
            vec![0.1, 0.2, 0.3, 0.4],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![
                Column::F64(vec![10.0, 20.0, 30.0, 40.0]),
                Column::I64(vec![1, 2, 3, 4]),
            ],
        );
        let sub = t.gather(&[1, 3]);
        assert_eq!(sub.keys(), &[3, 7]);
        assert_eq!(sub.value_f64(1, 0), 40.0);
        assert_eq!(sub.location(0), Point::new(0.2, 2.0));
        let pre = t.truncated(2);
        assert_eq!(pre.keys(), &[1, 3]);
        assert_eq!(pre.num_rows(), 2);
        // Truncation beyond the length is clamped.
        assert_eq!(t.truncated(99).num_rows(), 4);
    }
}
