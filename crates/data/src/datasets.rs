//! Synthetic stand-ins for the paper's real-world datasets (§4.1).
//!
//! We do not have the NYC TLC trip records, the geotagged tweets, or the
//! OSM extract, so each generator reproduces the *statistical shape* the
//! experiments depend on (see DESIGN.md's substitution table):
//!
//! * [`nyc_taxi`] — heavy spatial skew (a dense anisotropic "Manhattan"
//!   strip, borough blobs, two airport hotspots, uniform suburb noise),
//!   dirty rows for the cleaning pass, and attribute columns calibrated so
//!   the §4.4 filter predicates hit the paper's selectivities
//!   (`distance >= 4` ≈ 16 %, `passenger_cnt == 1` ≈ 70 %,
//!   `passenger_cnt > 1` ≈ 30 %).
//! * [`us_tweets`] — city-centred clusters in a continental bounding box
//!   with random integer payload columns (as in the paper).
//! * [`osm_americas`] — an even broader clustered + uniform mix.
//!
//! All generators are deterministic in their seed.

use crate::schema::{ColumnDef, Schema};
use crate::table::RawTable;
use gb_cell::Grid;
use gb_common::rng::{derive_seed, rng_from_seed};
use gb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::Rng;

/// A generated dataset: the raw table plus the grid domain to index it on.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub raw: RawTable,
    pub grid: Grid,
    /// Human-readable name used in reports.
    pub name: &'static str,
}

/// A weighted Gaussian (or line-segment) cluster of points.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Hotspot {
    /// Segment from `a` to `b` (equal for a round blob).
    a: Point,
    b: Point,
    /// Isotropic spread around the segment.
    sigma: f64,
    /// Relative sampling weight.
    weight: f64,
}

impl Hotspot {
    fn blob(center: Point, sigma: f64, weight: f64) -> Self {
        Hotspot {
            a: center,
            b: center,
            sigma,
            weight,
        }
    }

    fn strip(a: Point, b: Point, sigma: f64, weight: f64) -> Self {
        Hotspot {
            a,
            b,
            sigma,
            weight,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> Point {
        let t: f64 = rng.gen();
        let base = self.a + (self.b - self.a) * t;
        let gauss = normal_pair(rng);
        Point::new(base.x + gauss.0 * self.sigma, base.y + gauss.1 * self.sigma)
    }
}

/// Two independent standard normal samples (Box–Muller).
fn normal_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Sample a hotspot index proportional to weight.
fn pick_hotspot(hotspots: &[Hotspot], rng: &mut StdRng) -> usize {
    let total: f64 = hotspots.iter().map(|h| h.weight).sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, h) in hotspots.iter().enumerate() {
        if x < h.weight {
            return i;
        }
        x -= h.weight;
    }
    hotspots.len() - 1
}

/// NYC-taxi-shaped dataset domain: a 60 km × 60 km box.
pub fn nyc_domain() -> Rect {
    Rect::from_bounds(0.0, 0.0, 60.0, 60.0)
}

/// The "NYC hotspots" used by both the taxi generator and the neighborhood
/// polygon generator, so polygons land where the data is (§3.6 observation 3).
pub(crate) fn nyc_hotspots() -> Vec<Hotspot> {
    vec![
        // Manhattan: long, narrow, very dense diagonal strip.
        Hotspot::strip(Point::new(22.0, 28.0), Point::new(30.0, 46.0), 1.1, 0.50),
        // Brooklyn blob.
        Hotspot::blob(Point::new(30.0, 20.0), 3.2, 0.15),
        // Queens blob.
        Hotspot::blob(Point::new(40.0, 30.0), 3.6, 0.08),
        // JFK airport: tight.
        Hotspot::blob(Point::new(47.0, 17.0), 0.7, 0.07),
        // LaGuardia: tight.
        Hotspot::blob(Point::new(36.0, 37.0), 0.5, 0.05),
        // Bronx.
        Hotspot::blob(Point::new(27.0, 52.0), 2.5, 0.05),
        // Uniform suburb noise over the whole domain.
        Hotspot::blob(Point::new(30.0, 30.0), 18.0, 0.10),
    ]
}

/// Share of generated raw rows that are deliberately dirty (bad coordinates
/// or out-of-range values) so the extract phase has outliers to remove.
const DIRTY_FRACTION: f64 = 0.005;

/// GPS jitter around a pickup site, in km (≈8 m).
const GPS_JITTER: f64 = 0.008;

/// A finite set of pickup "sites" (street corners, taxi stands) with
/// Zipf-skewed popularity.
///
/// Real trip records snap to street geometry and popular locations, which
/// is why the paper's distinct-cell count *saturates* as rows grow
/// ("one million points already cover most areas in NYC", Figure 13) and
/// why a GeoBlock's size is "determined by the spatial distribution of
/// points, not their number". Sampling hotspot Gaussians continuously
/// would defeat both effects, so rows are drawn from this site set plus a
/// few metres of GPS noise.
struct SiteSet {
    sites: Vec<Point>,
    /// Cumulative sampling weights, same length as `sites`.
    cumulative: Vec<f64>,
}

impl SiteSet {
    fn generate(hotspots: &[Hotspot], sites_per_weight: f64, rng: &mut StdRng) -> SiteSet {
        let mut sites = Vec::new();
        let mut weights = Vec::new();
        for h in hotspots {
            let k = ((h.weight * sites_per_weight) as usize).max(8);
            for rank in 0..k {
                sites.push(h.sample(rng));
                // Zipf-ish popularity within the hotspot, scaled by the
                // hotspot's own weight.
                weights.push(h.weight / (rank as f64 + 1.0).powf(0.8));
            }
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        SiteSet { sites, cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> Point {
        let total = *self.cumulative.last().expect("non-empty site set");
        let x = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c < x);
        let site = self.sites[idx.min(self.sites.len() - 1)];
        let gauss = normal_pair(rng);
        Point::new(site.x + gauss.0 * GPS_JITTER, site.y + gauss.1 * GPS_JITTER)
    }
}

/// Generate `n` NYC-taxi-like trips.
///
/// Schema (7 columns — the paper queries "7 aggregates, requesting each
/// column at least once"): `fare_amount`, `trip_distance`, `tip_amount`,
/// `tip_rate`, `passenger_cnt`, `pickup_time`, `dropoff_time`.
pub fn nyc_taxi(n: usize, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(derive_seed(seed, "nyc_taxi"));
    let hotspots = nyc_hotspots();
    let domain = nyc_domain();
    // ~300k pickup sites (street-address granularity) regardless of n:
    // dense neighborhoods then contain thousands of occupied grid cells —
    // the workload the paper's query cache amortizes — while the finite
    // site set still saturates the distinct-cell count as rows grow
    // (Figure 13a's declining Block overhead; the paper's 12M-row dataset
    // occupies on the order of a million level-17 cells).
    let mut site_rng = rng_from_seed(derive_seed(seed, "nyc_sites"));
    let sites = SiteSet::generate(&hotspots, 300_000.0, &mut site_rng);

    let schema = Schema::new(vec![
        ColumnDef::f64("fare_amount"),
        ColumnDef::f64("trip_distance"),
        ColumnDef::f64("tip_amount"),
        ColumnDef::f64("tip_rate"),
        ColumnDef::i64("passenger_cnt"),
        ColumnDef::i64("pickup_time"),
        ColumnDef::i64("dropoff_time"),
    ]);
    let mut raw = RawTable::new(schema);
    raw.reserve(n);

    // Jan 1 – Mar 31 2015 in epoch seconds.
    const T0: f64 = 1_420_070_400.0;
    const T1: f64 = 1_427_846_400.0;

    for _ in 0..n {
        let mut loc = sites.sample(&mut rng);
        // Clamp stragglers into the domain (cleaning removes true outliers,
        // not the soft tail of legitimate clusters).
        loc.x = loc.x.clamp(domain.min.x, domain.max.x);
        loc.y = loc.y.clamp(domain.min.y, domain.max.y);

        // trip_distance ~ LogNormal(0.6, 0.8): P(d ≥ 4) ≈ 0.16 (§4.4).
        let (g, _) = normal_pair(&mut rng);
        let distance = (0.6 + 0.8 * g).exp().min(60.0);

        // passenger_cnt: P(1)=0.70, P(>1)=0.30 (§4.4 selectivities).
        let pax = {
            let r: f64 = rng.gen();
            if r < 0.70 {
                1.0
            } else if r < 0.85 {
                2.0
            } else if r < 0.91 {
                3.0
            } else if r < 0.95 {
                4.0
            } else if r < 0.98 {
                5.0
            } else {
                6.0
            }
        };

        let fare = 2.5 + 2.7 * distance + rng.gen_range(0.0..2.0);
        let tip_rate = (rng.gen_range(0.0f64..0.35)).powi(2) / 0.35; // skewed to low tips
        let tip = fare * tip_rate;
        let pickup = rng.gen_range(T0..T1).floor();
        let dropoff = pickup + (distance / 0.3) * 60.0 + rng.gen_range(60.0..300.0);

        let dirty: f64 = rng.gen();
        if dirty < DIRTY_FRACTION {
            // Dirty row: teleported coordinates or a nonsense fare.
            if rng.gen_bool(0.5) {
                raw.push_row(
                    Point::new(loc.x + 500.0, loc.y - 500.0),
                    &[fare, distance, tip, tip_rate, pax, pickup, dropoff.floor()],
                );
            } else {
                raw.push_row(
                    loc,
                    &[-fare, distance, tip, tip_rate, pax, pickup, dropoff.floor()],
                );
            }
        } else {
            raw.push_row(
                loc,
                &[fare, distance, tip, tip_rate, pax, pickup, dropoff.floor()],
            );
        }
    }

    Dataset {
        raw,
        grid: Grid::hilbert(domain),
        name: "nyc_taxi",
    }
}

/// Cleaning rules matching the taxi schema (positive fares, sane ranges).
pub fn nyc_cleaning_rules() -> crate::extract::CleaningRules {
    crate::extract::CleaningRules::none()
        .with_bound(0, 0.0, 500.0) // fare_amount
        .with_bound(1, 0.0, 100.0) // trip_distance
        .with_bound(2, 0.0, 500.0) // tip_amount
}

/// US-continental domain for the tweets dataset (rough km scale).
pub fn us_domain() -> Rect {
    Rect::from_bounds(0.0, 0.0, 4600.0, 2600.0)
}

/// Generate `n` geotagged-tweet-like points with integer payloads.
pub fn us_tweets(n: usize, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(derive_seed(seed, "us_tweets"));
    let domain = us_domain();

    // ~28 "cities" with Zipf-ish weights, deterministically placed.
    let mut place_rng = rng_from_seed(derive_seed(seed, "us_cities"));
    let mut hotspots: Vec<Hotspot> = (0..28)
        .map(|i| {
            let c = Point::new(
                place_rng.gen_range(domain.min.x + 150.0..domain.max.x - 150.0),
                place_rng.gen_range(domain.min.y + 150.0..domain.max.y - 150.0),
            );
            Hotspot::blob(c, place_rng.gen_range(18.0..70.0), 1.0 / (i as f64 + 1.0))
        })
        .collect();
    hotspots.push(Hotspot::blob(domain.center(), 1400.0, 0.55)); // rural noise

    let schema = Schema::new(vec![ColumnDef::i64("val_a"), ColumnDef::i64("val_b")]);
    let mut raw = RawTable::new(schema);
    raw.reserve(n);
    for _ in 0..n {
        let h = &hotspots[pick_hotspot(&hotspots, &mut rng)];
        let mut loc = h.sample(&mut rng);
        loc.x = loc.x.clamp(domain.min.x, domain.max.x);
        loc.y = loc.y.clamp(domain.min.y, domain.max.y);
        let a = rng.gen_range(0.0f64..10_000.0).floor();
        let b = rng.gen_range(-1_000.0f64..1_000.0).floor();
        raw.push_row(loc, &[a, b]);
    }
    Dataset {
        raw,
        grid: Grid::hilbert(domain),
        name: "us_tweets",
    }
}

/// Americas-scale domain for the OSM dataset.
pub fn americas_domain() -> Rect {
    Rect::from_bounds(0.0, 0.0, 9000.0, 14000.0)
}

/// Generate `n` OSM-like points across the Americas-scale domain.
pub fn osm_americas(n: usize, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(derive_seed(seed, "osm_americas"));
    let domain = americas_domain();

    let mut place_rng = rng_from_seed(derive_seed(seed, "osm_regions"));
    let mut hotspots: Vec<Hotspot> = (0..60)
        .map(|i| {
            let c = Point::new(
                place_rng.gen_range(domain.min.x + 300.0..domain.max.x - 300.0),
                place_rng.gen_range(domain.min.y + 300.0..domain.max.y - 300.0),
            );
            Hotspot::blob(
                c,
                place_rng.gen_range(40.0..220.0),
                1.0 / (i as f64 + 2.0).sqrt(),
            )
        })
        .collect();
    hotspots.push(Hotspot::blob(domain.center(), 5000.0, 2.0));

    let schema = Schema::new(vec![ColumnDef::i64("val_a"), ColumnDef::i64("val_b")]);
    let mut raw = RawTable::new(schema);
    raw.reserve(n);
    for _ in 0..n {
        let h = &hotspots[pick_hotspot(&hotspots, &mut rng)];
        let mut loc = h.sample(&mut rng);
        loc.x = loc.x.clamp(domain.min.x, domain.max.x);
        loc.y = loc.y.clamp(domain.min.y, domain.max.y);
        let a = rng.gen_range(0.0f64..100_000.0).floor();
        let b = rng.gen_range(0.0f64..255.0).floor();
        raw.push_row(loc, &[a, b]);
    }
    Dataset {
        raw,
        grid: Grid::hilbert(domain),
        name: "osm_americas",
    }
}

/// Distribution helper exposed for tests: empirical selectivity of a
/// threshold on a generated column. [`crate::DataError::UnknownColumn`]
/// for a column not in the dataset's schema (this used to `expect`).
pub fn empirical_selectivity(
    ds: &Dataset,
    column: &str,
    f: impl Fn(f64) -> bool,
) -> Result<f64, crate::DataError> {
    use crate::table::Rows;
    let idx = ds.raw.schema().require(column)?;
    let n = ds.raw.num_rows();
    if n == 0 {
        return Ok(0.0);
    }
    let hits = (0..n).filter(|&r| f(ds.raw.value_f64(r, idx))).count();
    Ok(hits as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Rows;

    #[test]
    fn taxi_is_deterministic() {
        let a = nyc_taxi(500, 42);
        let b = nyc_taxi(500, 42);
        assert_eq!(a.raw.num_rows(), b.raw.num_rows());
        for r in (0..500).step_by(37) {
            assert_eq!(a.raw.location(r), b.raw.location(r));
            assert_eq!(a.raw.value_f64(r, 0), b.raw.value_f64(r, 0));
        }
        let c = nyc_taxi(500, 43);
        assert_ne!(a.raw.location(0), c.raw.location(0));
    }

    #[test]
    fn taxi_filter_selectivities_match_paper() {
        let ds = nyc_taxi(40_000, 7);
        let s_dist = empirical_selectivity(&ds, "trip_distance", |d| d >= 4.0).unwrap();
        let s_solo = empirical_selectivity(&ds, "passenger_cnt", |p| p == 1.0).unwrap();
        let s_shared = empirical_selectivity(&ds, "passenger_cnt", |p| p > 1.0).unwrap();
        assert!((s_dist - 0.16).abs() < 0.03, "distance>=4 sel {s_dist}");
        assert!((s_solo - 0.70).abs() < 0.03, "pax==1 sel {s_solo}");
        assert!((s_shared - 0.30).abs() < 0.03, "pax>1 sel {s_shared}");
        // Unknown columns surface as typed errors, not panics.
        let err = empirical_selectivity(&ds, "no_such_column", |_| true).unwrap_err();
        assert!(err.to_string().contains("no_such_column"));
    }

    #[test]
    fn taxi_is_spatially_skewed() {
        // More than a third of all points land in the Manhattan strip's
        // bounding area, which is a small fraction of the domain.
        let ds = nyc_taxi(20_000, 11);
        let strip = Rect::from_bounds(18.0, 24.0, 34.0, 50.0);
        let frac = (0..ds.raw.num_rows())
            .filter(|&r| strip.contains_point(ds.raw.location(r)))
            .count() as f64
            / ds.raw.num_rows() as f64;
        assert!(frac > 0.45, "Manhattan fraction {frac}");
        assert!(strip.area() / nyc_domain().area() < 0.12);
    }

    #[test]
    fn taxi_contains_dirty_rows() {
        let ds = nyc_taxi(50_000, 3);
        let dirty = empirical_selectivity(&ds, "fare_amount", |f| f < 0.0).unwrap();
        let outside = (0..ds.raw.num_rows())
            .filter(|&r| !nyc_domain().contains_point(ds.raw.location(r)))
            .count();
        assert!(
            dirty > 0.0005 && dirty < 0.01,
            "negative-fare fraction {dirty}"
        );
        assert!(outside > 0, "expected teleported outliers");
    }

    #[test]
    fn tweets_and_osm_generate_in_domain_with_payload() {
        let tw = us_tweets(2_000, 5);
        assert_eq!(tw.raw.schema().len(), 2);
        for r in (0..2000).step_by(101) {
            assert!(us_domain().contains_point(tw.raw.location(r)));
        }
        let osm = osm_americas(2_000, 5);
        for r in (0..2000).step_by(101) {
            assert!(americas_domain().contains_point(osm.raw.location(r)));
        }
    }

    #[test]
    fn dropoff_after_pickup() {
        let ds = nyc_taxi(1_000, 9);
        let s = ds.raw.schema();
        let (pi, di) = (
            s.require("pickup_time").unwrap(),
            s.require("dropoff_time").unwrap(),
        );
        for r in 0..1000 {
            assert!(ds.raw.value_f64(r, di) > ds.raw.value_f64(r, pi));
        }
    }
}
