//! The extract phase: clean, key, and sort raw data (§3.3, Figure 5).
//!
//! "In the first phase, we prepare the raw data by filtering outliers in the
//! often dirty datasets […]. We furthermore sort the data by the generated
//! one-dimensional spatial key. This extract phase is run exactly once per
//! dataset."
//!
//! Two entry points mirror the paper's §4.4 comparison:
//!
//! * [`extract`] — the incremental-build base path: clean **all** rows, sort
//!   once, build many filtered GeoBlocks from the result later. Cost
//!   `O(n log n)` once.
//! * [`extract_filtered`] — the isolated-build path: apply the filter
//!   *before* sorting, producing base data for exactly one GeoBlock. Cost
//!   `O(n) + O(sn log sn)` per filter.
//!
//! Both optionally piggyback the collection of distinct block-level cell ids
//! onto the sort pass (the paper notes this "gap in the sorting phase […]
//! caused by the collection of grid cell ids", Figure 11a / Table 2).

use crate::filter::Filter;
use crate::table::{apply_permutation, sort_permutation, BaseTable, RawTable, Rows};
use gb_cell::Grid;
use std::time::Duration;

/// Validity rules applied during cleaning.
///
/// A row is kept iff its location is finite and inside the grid domain, all
/// attribute values are finite, and every `(column, min, max)` bound holds.
#[derive(Debug, Clone, Default)]
pub struct CleaningRules {
    /// Closed `[min, max]` validity ranges per column index.
    pub bounds: Vec<(usize, f64, f64)>,
}

impl CleaningRules {
    /// No bounds beyond finiteness/domain checks.
    pub fn none() -> Self {
        CleaningRules::default()
    }

    /// Add a validity range for a column.
    pub fn with_bound(mut self, column: usize, min: f64, max: f64) -> Self {
        self.bounds.push((column, min, max));
        self
    }

    fn row_ok(&self, table: &RawTable, row: usize, grid: &Grid) -> bool {
        let loc = table.location(row);
        if !loc.is_finite() || !grid.domain().contains_point(loc) {
            return false;
        }
        for col in 0..table.schema().len() {
            if !table.value_f64(row, col).is_finite() {
                return false;
            }
        }
        self.bounds
            .iter()
            .all(|&(c, lo, hi)| (lo..=hi).contains(&table.value_f64(row, c)))
    }
}

/// Timing and cardinality statistics of an extract run.
#[derive(Debug, Clone, Default)]
pub struct ExtractStats {
    /// Rows in the raw input.
    pub rows_in: usize,
    /// Rows dropped by cleaning (and, for the isolated path, filtering).
    pub rows_dropped: usize,
    /// Wall time of the cleaning + keying pass.
    pub clean_time: Duration,
    /// Wall time of the sort (including the piggybacked cell collection).
    pub sort_time: Duration,
    /// Distinct block-level cells seen, if requested.
    pub distinct_block_cells: Option<usize>,
}

/// Result of an extract run: the sorted base data plus statistics.
#[derive(Debug, Clone)]
pub struct Extract {
    pub base: BaseTable,
    pub stats: ExtractStats,
}

/// Clean + key + sort the whole dataset (incremental-build base path).
pub fn extract(
    raw: &RawTable,
    grid: Grid,
    rules: &CleaningRules,
    block_level: Option<u8>,
) -> Extract {
    extract_inner(raw, grid, rules, &Filter::all(), block_level)
}

/// Clean + **filter** + key + sort (isolated-build path, §4.4 Eq. 1).
pub fn extract_filtered(
    raw: &RawTable,
    grid: Grid,
    rules: &CleaningRules,
    filter: &Filter,
    block_level: Option<u8>,
) -> Extract {
    extract_inner(raw, grid, rules, filter, block_level)
}

fn extract_inner(
    raw: &RawTable,
    grid: Grid,
    rules: &CleaningRules,
    filter: &Filter,
    block_level: Option<u8>,
) -> Extract {
    let mut stats = ExtractStats {
        rows_in: raw.num_rows(),
        ..Default::default()
    };

    // Clean + generate spatial keys.
    let t = gb_common::Timer::start();
    let mut kept: Vec<u32> = Vec::with_capacity(raw.num_rows());
    let mut keys: Vec<u64> = Vec::with_capacity(raw.num_rows());
    for row in 0..raw.num_rows() {
        if rules.row_ok(raw, row, &grid) && filter.matches(raw, row) {
            kept.push(row as u32);
            keys.push(grid.leaf_for_point(raw.location(row)).raw());
        }
    }
    stats.rows_dropped = raw.num_rows() - kept.len();
    stats.clean_time = t.elapsed();

    // Sort by key; piggyback distinct block-cell collection if requested.
    let t = gb_common::Timer::start();
    let (sorted_keys, perm) = sort_permutation(&keys);
    if let Some(level) = block_level {
        // Leaf ids are `(pos << 1) | 1`; the level-`level` cell is the top
        // `2·level` bits of `pos`, i.e. the id shifted by one extra bit for
        // the sentinel.
        let shift = 2 * (gb_cell::MAX_LEVEL - level) as u64 + 1;
        let mut distinct = 0usize;
        let mut prev = u64::MAX;
        for &k in &sorted_keys {
            let cell = k >> shift;
            if cell != prev {
                distinct += 1;
                prev = cell;
            }
        }
        stats.distinct_block_cells = Some(distinct);
    }
    // The permutation indexes into the *kept* rows; remap to raw rows so a
    // single gather pass pulls coordinates and columns from the raw table.
    let raw_perm: Vec<u32> = perm.iter().map(|&i| kept[i as usize]).collect();
    let base = apply_permutation(
        grid,
        raw.schema().clone(),
        sorted_keys,
        &raw_perm,
        raw.xs(),
        raw.ys(),
        raw.columns(),
    );
    stats.sort_time = t.elapsed();

    Extract { base, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::CmpOp;
    use crate::schema::{ColumnDef, Schema};
    use gb_geom::{Point, Rect};

    fn grid() -> Grid {
        Grid::hilbert(Rect::from_bounds(0.0, 0.0, 100.0, 100.0))
    }

    fn raw() -> RawTable {
        let mut t = RawTable::new(Schema::new(vec![ColumnDef::f64("v")]));
        t.push_row(Point::new(90.0, 90.0), &[1.0]);
        t.push_row(Point::new(10.0, 10.0), &[2.0]);
        t.push_row(Point::new(500.0, 10.0), &[3.0]); // outside domain
        t.push_row(Point::new(50.0, 50.0), &[f64::NAN]); // dirty value
        t.push_row(Point::new(20.0, 80.0), &[-7.0]);
        t.push_row(Point::new(20.0, 81.0), &[100.0]);
        t
    }

    #[test]
    fn extract_cleans_and_sorts() {
        let ex = extract(&raw(), grid(), &CleaningRules::none(), None);
        assert_eq!(ex.stats.rows_in, 6);
        assert_eq!(ex.stats.rows_dropped, 2);
        assert_eq!(ex.base.num_rows(), 4);
        assert!(ex.base.keys().windows(2).all(|w| w[0] <= w[1]));
        // Attribute values follow their rows through the sort.
        for row in 0..ex.base.num_rows() {
            let loc = ex.base.location(row);
            let key = ex.base.grid().leaf_for_point(loc).raw();
            assert_eq!(ex.base.keys()[row], key, "key/row correspondence");
        }
    }

    #[test]
    fn extract_applies_bounds() {
        let rules = CleaningRules::none().with_bound(0, 0.0, 50.0);
        let ex = extract(&raw(), grid(), &rules, None);
        // -7 and 100 now also dropped.
        assert_eq!(ex.base.num_rows(), 2);
    }

    #[test]
    fn extract_filtered_prefilters() {
        let t = raw();
        let f = Filter::on(&t, "v", CmpOp::Ge, 2.0).unwrap();
        let ex = extract_filtered(&t, grid(), &CleaningRules::none(), &f, None);
        // Row 0 (v=1) and row 4 (v=-7) removed on top of the dirty rows.
        assert_eq!(ex.base.num_rows(), 2);
        for row in 0..ex.base.num_rows() {
            assert!(ex.base.value_f64(row, 0) >= 2.0);
        }
    }

    #[test]
    fn block_cell_collection_counts_distinct() {
        let ex = extract(&raw(), grid(), &CleaningRules::none(), Some(4));
        let distinct = ex.stats.distinct_block_cells.unwrap();
        assert!((1..=4).contains(&distinct), "got {distinct}");
        // At level 30 every point is its own cell here.
        let ex_fine = extract(&raw(), grid(), &CleaningRules::none(), Some(30));
        assert_eq!(ex_fine.stats.distinct_block_cells, Some(4));
    }

    #[test]
    fn empty_input_extracts_empty() {
        let t = RawTable::new(Schema::new(vec![ColumnDef::f64("v")]));
        let ex = extract(&t, grid(), &CleaningRules::none(), Some(10));
        assert_eq!(ex.base.num_rows(), 0);
        assert_eq!(ex.stats.distinct_block_cells, Some(0));
    }
}
