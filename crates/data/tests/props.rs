//! Property tests for the data pipeline: extraction must be a permutation
//! of the clean rows, sorted by spatial key, with attributes following
//! their rows; the two extract paths must agree; workloads must be
//! deterministic in their seeds.

use gb_cell::Grid;
use gb_data::{
    extract, extract_filtered, CleaningRules, CmpOp, ColumnDef, Filter, Predicate, RawTable, Rows,
    Schema,
};
use gb_geom::{Point, Rect};
use proptest::prelude::*;

const DOMAIN: f64 = 50.0;

fn make_raw(rows: &[(f64, f64, f64)]) -> RawTable {
    let mut raw = RawTable::new(Schema::new(vec![
        ColumnDef::f64("v"),
        ColumnDef::i64("tag"),
    ]));
    for (i, &(x, y, v)) in rows.iter().enumerate() {
        raw.push_row(Point::new(x, y), &[v, i as f64]);
    }
    raw
}

fn grid() -> Grid {
    Grid::hilbert(Rect::from_bounds(0.0, 0.0, DOMAIN, DOMAIN))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extract_is_a_sorted_permutation(
        rows in prop::collection::vec((0.0..DOMAIN, 0.0..DOMAIN, -100.0f64..100.0), 0..300),
    ) {
        let raw = make_raw(&rows);
        let ex = extract(&raw, grid(), &CleaningRules::none(), None);
        prop_assert_eq!(ex.base.num_rows(), rows.len());
        prop_assert_eq!(ex.stats.rows_dropped, 0);
        // Keys ascend.
        prop_assert!(ex.base.keys().windows(2).all(|w| w[0] <= w[1]));
        // Every output row is an input row (tag column identifies it) with
        // all fields intact, and each input appears exactly once.
        let mut seen = vec![false; rows.len()];
        for out in 0..ex.base.num_rows() {
            let tag = ex.base.value_f64(out, 1) as usize;
            prop_assert!(tag < rows.len());
            prop_assert!(!seen[tag], "row {} duplicated", tag);
            seen[tag] = true;
            let (x, y, v) = rows[tag];
            prop_assert_eq!(ex.base.location(out), Point::new(x, y));
            prop_assert_eq!(ex.base.value_f64(out, 0), v);
            // Key really is the row's leaf cell.
            prop_assert_eq!(
                ex.base.keys()[out],
                grid().leaf_for_point(Point::new(x, y)).raw()
            );
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cleaning_drops_exactly_the_out_of_range_rows(
        rows in prop::collection::vec((0.0..DOMAIN, 0.0..DOMAIN, -100.0f64..100.0), 0..200),
        lo in -50.0f64..0.0,
        hi in 0.0f64..50.0,
    ) {
        let raw = make_raw(&rows);
        let rules = CleaningRules::none().with_bound(0, lo, hi);
        let ex = extract(&raw, grid(), &rules, None);
        let expected = rows.iter().filter(|r| r.2 >= lo && r.2 <= hi).count();
        prop_assert_eq!(ex.base.num_rows(), expected);
        prop_assert_eq!(ex.stats.rows_dropped, rows.len() - expected);
        for out in 0..ex.base.num_rows() {
            let v = ex.base.value_f64(out, 0);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn filtered_extract_equals_filter_after_extract(
        rows in prop::collection::vec((0.0..DOMAIN, 0.0..DOMAIN, -100.0f64..100.0), 0..250),
        threshold in -100.0f64..100.0,
    ) {
        let raw = make_raw(&rows);
        let filter = Filter::new(vec![Predicate::new(0, CmpOp::Ge, threshold)]);

        // Path A: filter before sort (isolated).
        let a = extract_filtered(&raw, grid(), &CleaningRules::none(), &filter, None).base;
        // Path B: sort everything, then gather matching rows.
        let all = extract(&raw, grid(), &CleaningRules::none(), None).base;
        let matching = filter.matching_rows(&all);
        let b = all.gather(&matching);

        prop_assert_eq!(a.num_rows(), b.num_rows());
        prop_assert_eq!(a.keys(), b.keys());
        for row in 0..a.num_rows() {
            prop_assert_eq!(a.value_f64(row, 0), b.value_f64(row, 0));
            prop_assert_eq!(a.value_f64(row, 1), b.value_f64(row, 1));
            prop_assert_eq!(a.location(row), b.location(row));
        }
    }

    #[test]
    fn piggybacked_cell_count_matches_dedup(
        rows in prop::collection::vec((0.0..DOMAIN, 0.0..DOMAIN, 0.0f64..1.0), 1..300),
        level in 0u8..14,
    ) {
        let raw = make_raw(&rows);
        let ex = extract(&raw, grid(), &CleaningRules::none(), Some(level));
        let mut cells: Vec<u64> = ex
            .base
            .keys()
            .iter()
            .map(|&k| gb_cell::CellId::from_raw(k).parent_at(level).raw())
            .collect();
        cells.sort_unstable();
        cells.dedup();
        prop_assert_eq!(ex.stats.distinct_block_cells, Some(cells.len()));
    }

    #[test]
    fn truncated_prefix_preserves_rows(
        rows in prop::collection::vec((0.0..DOMAIN, 0.0..DOMAIN, 0.0f64..1.0), 1..200),
        take in 0usize..250,
    ) {
        let raw = make_raw(&rows);
        let base = extract(&raw, grid(), &CleaningRules::none(), None).base;
        let t = base.truncated(take);
        let n = take.min(rows.len());
        prop_assert_eq!(t.num_rows(), n);
        for row in 0..n {
            prop_assert_eq!(t.keys()[row], base.keys()[row]);
            prop_assert_eq!(t.value_f64(row, 0), base.value_f64(row, 0));
        }
    }
}
