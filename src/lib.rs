//! Umbrella crate for the GeoBlocks (EDBT 2021) reproduction.
//!
//! Re-exports every workspace crate under one name so the runnable
//! `examples/` and the cross-crate `tests/` have a single dependency
//! surface. See `README.md`, `DESIGN.md`, and `EXPERIMENTS.md` at the
//! repository root; library documentation lives in the individual crates:
//!
//! * [`geoblocks`] — the core data structure (blocks, trie cache, queries),
//! * [`gb_cell`] / [`gb_geom`] — spatial substrates,
//! * [`gb_data`] — columnar tables, extract phase, synthetic datasets,
//! * [`gb_store`] — versioned snapshot container (persistence),
//! * [`gb_serve`] — std-only HTTP serving front-end (wire endpoints,
//!   epoch-validated result cache, metrics, admission control),
//! * [`gb_btree`] / [`gb_phtree`] / [`gb_artree`] — baseline substrates,
//! * [`gb_baselines`] — the unified evaluation interface.

pub use gb_artree;
pub use gb_baselines;
pub use gb_btree;
pub use gb_cell;
pub use gb_common;
pub use gb_data;
pub use gb_geom;
pub use gb_phtree;
pub use gb_serve;
pub use gb_store;
pub use gb_trace;
pub use geoblocks;
