//! An exploratory-analysis session, as motivated in the paper's
//! introduction: an analyst repeatedly queries the same city areas with
//! varying aggregates, resizes regions, and compares neighborhoods — the
//! exact skew the AggregateTrie exploits (§3.6).
//!
//! The example runs the same session against a plain Block and a BlockQC
//! and reports the per-phase latency plus the cache behaviour, then streams
//! a batch of fresh rides into the structure (§5 updates).
//!
//! ```text
//! cargo run --release --example city_dashboard
//! ```

use gb_common::Timer;
use gb_data::{datasets, extract, polygons, AggSpec, Filter, Rows};
use gb_geom::{Point, Polygon};
use geoblocks::{build, GeoBlock, GeoBlockQC, UpdateBatch};

/// The analyst's focus area queries: a few hot polygons queried over and
/// over with changing aggregate sets, plus occasional one-off lookups.
struct Session {
    hot: Vec<Polygon>,
    cold: Vec<Polygon>,
    specs: Vec<AggSpec>,
}

impl Session {
    fn new(schema: &gb_data::Schema, seed: u64) -> Session {
        let all = polygons::neighborhoods(120, seed);
        Session {
            hot: all[..6].to_vec(),
            cold: all[6..].to_vec(),
            specs: (1..=4)
                .map(|k| AggSpec::k_aggregates(schema, 2 * k))
                .collect(),
        }
    }

    /// One "work burst": every hot polygon with every aggregate set, plus
    /// a handful of cold lookups.
    fn run(&self, mut select: impl FnMut(&Polygon, &AggSpec) -> u64) -> u64 {
        let mut total = 0;
        for poly in &self.hot {
            for spec in &self.specs {
                total += select(poly, spec);
            }
        }
        for poly in self.cold.iter().step_by(17) {
            total += select(poly, &self.specs[0]);
        }
        total
    }
}

fn main() {
    let ds = datasets::nyc_taxi(600_000, 1);
    let base = extract(&ds.raw, ds.grid, &datasets::nyc_cleaning_rules(), None).base;
    let (block, _) = build(&base, 10, &Filter::all());
    println!(
        "dataset: {} rides, GeoBlock with {} cells at level {}",
        base.num_rows(),
        block.num_cells(),
        block.level()
    );

    let session = Session::new(base.schema(), 1);

    // Plain Block: every burst costs the same.
    let plain: GeoBlock = block.clone();
    let mut plain_totals = Vec::new();
    for _ in 0..5 {
        let t = Timer::start();
        let checksum = session.run(|p, s| plain.select(p, s).0.count);
        plain_totals.push((t.elapsed_ms(), checksum));
    }

    // BlockQC: statistics accumulate, the cache warms after burst 1.
    let mut qc = GeoBlockQC::new(block, 0.05);
    let mut qc_totals = Vec::new();
    for burst in 0..5 {
        let t = Timer::start();
        let checksum = session.run(|p, s| qc.select(p, s).result.count);
        qc_totals.push((t.elapsed_ms(), checksum));
        if burst == 0 {
            qc.rebuild_cache(); // materialize the hot areas
        }
    }

    println!("\nburst | Block ms | BlockQC ms");
    for (i, (p, q)) in plain_totals.iter().zip(&qc_totals).enumerate() {
        assert_eq!(p.1, q.1, "both variants must return identical results");
        println!(
            "  {}   |  {:7.2} |  {:7.2}{}",
            i + 1,
            p.0,
            q.0,
            if i == 0 { "  (cold)" } else { "" }
        );
    }
    println!(
        "\ncache: {} aggregates cached, {}",
        qc.trie().num_cached(),
        gb_common::fmt::bytes(qc.trie().size_bytes()),
    );

    // Live updates: a batch of fresh rides lands in Manhattan (§5).
    let schema_len = base.schema().len();
    let mut batch = UpdateBatch::new();
    for i in 0..500 {
        let x = 24.0 + (i % 25) as f64 * 0.2;
        let y = 30.0 + (i / 25) as f64 * 0.6;
        batch.push(Point::new(x, y), vec![10.0; schema_len]);
    }
    let before = qc.count(&session.hot[0]).result;
    let report = qc.apply_updates(&batch);
    let after = qc.count(&session.hot[0]).result;
    println!(
        "\nupdates: {} in place, {} new cells; hot-area count {before} → {after}",
        report.in_place, report.new_cells
    );
}
