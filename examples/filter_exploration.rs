//! Changing filters cheaply: incremental GeoBlock builds from sorted base
//! data versus isolated builds from raw data (§3.3, §4.4, Figure 19).
//!
//! An analyst compares trip subsets — long trips, solo rides, shared rides
//! — each needing its own filtered GeoBlock. Sorting the full dataset once
//! makes every additional filtered block a single linear pass.
//!
//! ```text
//! cargo run --release --example filter_exploration
//! ```

use gb_common::Timer;
use gb_data::{
    datasets, extract, extract_filtered, polygons, AggSpec, CmpOp, Filter, Predicate, Rows,
};
use geoblocks::build;

fn main() {
    let ds = datasets::nyc_taxi(600_000, 3);
    let rules = datasets::nyc_cleaning_rules();
    let level = 10;

    let dist = ds.raw.schema().index_of("trip_distance").unwrap();
    let pax = ds.raw.schema().index_of("passenger_cnt").unwrap();
    let filters = [
        ("all rides", Filter::all()),
        (
            "distance >= 4",
            Filter::new(vec![Predicate::new(dist, CmpOp::Ge, 4.0)]),
        ),
        (
            "passenger_cnt == 1",
            Filter::new(vec![Predicate::new(pax, CmpOp::Eq, 1.0)]),
        ),
        (
            "passenger_cnt > 1",
            Filter::new(vec![Predicate::new(pax, CmpOp::Gt, 1.0)]),
        ),
    ];

    // Incremental path: pay the full sort once…
    let t = Timer::start();
    let all = extract(&ds.raw, ds.grid, &rules, None);
    let sort_ms = t.elapsed_ms();
    println!(
        "one-time extract (clean + sort {} rows): {sort_ms:.0} ms\n",
        all.base.num_rows()
    );

    println!("filter               | selectivity | incremental ms | isolated ms");
    let mut incr_sum = 0.0;
    let mut iso_sum = 0.0;
    for (name, filter) in &filters {
        // …then each filtered block is a single pass over sorted data.
        let t = Timer::start();
        let (inc_block, _) = build(&all.base, level, filter);
        let incr_ms = t.elapsed_ms();

        // Isolated path: filter raw, sort the subset, aggregate.
        let t = Timer::start();
        let ex = extract_filtered(&ds.raw, ds.grid, &rules, filter, None);
        let (iso_block, _) = build(&ex.base, level, &Filter::all());
        let iso_ms = t.elapsed_ms();

        assert_eq!(
            inc_block.num_rows(),
            iso_block.num_rows(),
            "same rows either way"
        );
        let sel = inc_block.num_rows() as f64 / all.base.num_rows() as f64;
        println!(
            "{name:20} | {:10.1}% | {incr_ms:14.0} | {iso_ms:11.0}",
            sel * 100.0
        );
        incr_sum += incr_ms;
        iso_sum += iso_ms;
    }

    println!(
        "\ntotals: sort-once {sort_ms:.0} ms + {incr_sum:.0} ms incremental = {:.0} ms vs {iso_sum:.0} ms isolated",
        sort_ms + incr_sum
    );
    let payoff = sort_ms / (iso_sum / filters.len() as f64 - incr_sum / filters.len() as f64);
    println!(
        "average payoff point: ~{:.0} filter changes to amortize the shared sort",
        payoff.max(1.0)
    );

    // The filtered blocks answer the paper's comparison query directly:
    // "compare the tip rate of expensive taxi rides with that of all rides".
    let fare = ds.raw.schema().index_of("fare_amount").unwrap();
    let tip_rate = ds.raw.schema().index_of("tip_rate").unwrap();
    let expensive = Filter::new(vec![Predicate::new(fare, CmpOp::Gt, 20.0)]);
    let (exp_block, _) = build(&all.base, level, &expensive);
    let (all_block, _) = build(&all.base, level, &Filter::all());

    let region = &polygons::neighborhoods(30, 3)[0];
    let spec = AggSpec::new(vec![gb_data::AggRequest::new(
        gb_data::AggFunc::Avg,
        tip_rate,
    )]);
    let (exp_res, _) = exp_block.select(region, &spec);
    let (all_res, _) = all_block.select(region, &spec);
    println!(
        "\navg tip rate in one neighborhood: expensive rides {:.3} vs all rides {:.3}",
        exp_res.value(0).unwrap_or(f64::NAN),
        all_res.value(0).unwrap_or(f64::NAN)
    );
}
