//! Quickstart: build a GeoBlock over synthetic taxi data and run spatial
//! aggregation queries over an arbitrary polygon.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gb_data::{datasets, extract, polygons, AggFunc, AggRequest, AggSpec, Filter, Rows};
use geoblocks::{build, GeoBlockQC};

fn main() {
    // 1. Generate a synthetic NYC-taxi-like dataset (deterministic seed)
    //    and run the extract phase: clean, compute spatial keys, sort.
    let ds = datasets::nyc_taxi(300_000, 42);
    let extract = extract(&ds.raw, ds.grid, &datasets::nyc_cleaning_rules(), None);
    let base = extract.base;
    println!(
        "extracted {} rows ({} dirty rows dropped) in {:.0} ms",
        base.num_rows(),
        extract.stats.rows_dropped,
        (extract.stats.clean_time + extract.stats.sort_time).as_secs_f64() * 1e3,
    );

    // 2. Build a GeoBlock. The block level bounds the spatial error: level
    //    10 on the 60 km domain ≈ 83 m cell diagonal.
    let level = 10;
    let (block, stats) = build(&base, level, &Filter::all());
    println!(
        "built GeoBlock: {} cells over {} rows in {:.0} ms (max spatial error {:.0} m)",
        block.num_cells(),
        block.num_rows(),
        stats.build_time.as_secs_f64() * 1e3,
        block.error_bound() * 1000.0,
    );

    // 3. Query a neighborhood polygon for several aggregates at once.
    let neighborhood = &polygons::neighborhoods(20, 42)[7];
    let schema = base.schema();
    let spec = AggSpec::new(vec![
        AggRequest::new(AggFunc::Count, 0),
        AggRequest::new(AggFunc::Sum, schema.index_of("fare_amount").unwrap()),
        AggRequest::new(AggFunc::Avg, schema.index_of("trip_distance").unwrap()),
        AggRequest::new(AggFunc::Max, schema.index_of("tip_amount").unwrap()),
    ]);
    let (result, qstats) = block.select(neighborhood, &spec);
    println!("\nSELECT over one neighborhood polygon:");
    println!("  rides (count):      {}", result.count);
    println!(
        "  sum(fare_amount):   {:.2}",
        result.value(1).unwrap_or(f64::NAN)
    );
    println!(
        "  avg(trip_distance): {:.2}",
        result.value(2).unwrap_or(f64::NAN)
    );
    println!(
        "  max(tip_amount):    {:.2}",
        result.value(3).unwrap_or(f64::NAN)
    );
    println!(
        "  ({} covering cells, {} cell aggregates combined)",
        qstats.query_cells, qstats.cells_combined
    );

    // 4. COUNT uses the Listing-2 range-sum: two prefix probes per
    // covering cell, independent of how many records the cell spans.
    // (SELECT is just as frugal since the aggregate pyramid: one combined
    // record per covering cell.)
    let (count, cstats) = block.count(neighborhood);
    println!(
        "\nCOUNT = {count} touching {} aggregates ({} for SELECT)",
        cstats.cells_combined, qstats.cells_combined
    );

    // 5. The query cache accelerates repeated regions.
    let mut qc = GeoBlockQC::new(block, 0.05);
    for _ in 0..3 {
        qc.select(neighborhood, &spec);
    }
    qc.rebuild_cache();
    qc.reset_metrics();
    let cached = qc.select(neighborhood, &spec);
    assert_eq!(
        cached.result.count, result.count,
        "cache must not change results"
    );
    println!(
        "\nBlockQC answered the repeat query with a {:.0}% cache hit rate",
        qc.metrics().hit_rate() * 100.0
    );
}
