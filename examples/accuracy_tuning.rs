//! Choosing a block level: the error / runtime / memory trade-off (§3.2,
//! Figure 16 and Figure 11c).
//!
//! The block level is the user's error knob: each level halves the cell
//! diagonal (the maximum spatial error) and quadruples the potential cell
//! count. This example sweeps levels, measures the real relative error of
//! COUNT queries against exact ground truth, and verifies that the actual
//! error never exceeds the §3.2 guarantee.
//!
//! ```text
//! cargo run --release --example accuracy_tuning
//! ```

use gb_baselines::{relative_error, GroundTruth};
use gb_common::Timer;
use gb_data::{datasets, extract, polygons, Filter, Rows};
use geoblocks::build;

fn main() {
    let ds = datasets::nyc_taxi(400_000, 5);
    let base = extract(&ds.raw, ds.grid, &datasets::nyc_cleaning_rules(), None).base;
    let polys = polygons::neighborhoods(60, 5);
    let gt = GroundTruth::new(&base);
    let exact: Vec<u64> = polys.iter().map(|p| gt.exact_count(p)).collect();

    println!("level | cell diag (m) | cells    | memory     | avg error | mean µs/query");
    for level in 6..=14u8 {
        let (block, _) = build(&base, level, &Filter::all());

        let t = Timer::start();
        let mut errs = Vec::new();
        for (poly, &truth) in polys.iter().zip(&exact) {
            let (cnt, _) = block.count(poly);
            if truth > 0 {
                errs.push(relative_error(cnt, truth));
            }
        }
        let mean_us = t.elapsed_us() / polys.len() as f64;
        let avg_err = errs.iter().sum::<f64>() / errs.len() as f64;

        println!(
            "  {:2}  | {:12.1} | {:8} | {:>10} | {:8.2}% | {:10.1}",
            level,
            block.error_bound() * 1000.0,
            block.num_cells(),
            gb_common::fmt::bytes(block.memory_bytes()),
            avg_err * 100.0,
            mean_us,
        );
    }

    // The guarantee: every point the covering adds lies within one cell
    // diagonal of the polygon outline. Verify against a generous sample.
    let level = 10;
    let (block, _) = build(&base, level, &Filter::all());
    let bound = block.error_bound();
    let mut checked = 0usize;
    for poly in polys.iter().take(10) {
        let covering = block.cover(poly);
        for row in 0..base.num_rows() {
            let p = base.location(row);
            let leaf = base.grid().leaf_for_point(p);
            if covering.contains(leaf) && !poly.contains_point(p) {
                // A false positive: must be within the error bound.
                let d = -gb_geom::interior::signed_distance(poly, p);
                assert!(
                    d <= bound * 1.001,
                    "point {p:?} violates the bound: {d} > {bound}"
                );
                checked += 1;
            }
        }
    }
    println!(
        "\nverified the §3.2 bound on {checked} false-positive points: all within {:.0} m of the outline",
        bound * 1000.0
    );
}
