//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion API its benches use: `Criterion`
//! with builder-style config, benchmark groups, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — warm up for `warm_up_time`,
//! calibrate an iteration count that fills `measurement_time`, run several
//! equally-sized batches, and report the mean and median ns/iteration to
//! stdout. There are no statistical analyses, no HTML reports, and no
//! `target/criterion` output; the shim exists so `cargo bench` compiles
//! and produces usable relative numbers.
//!
//! Two environment knobs support the CI perf-smoke gate:
//!
//! * `CRITERION_JSON=<path>` — append one stable JSON line per benchmark
//!   (`{"id":…,"mean_ns":…,"median_ns":…,"iters":…}`, the same format
//!   `gb_bench::json` reads), so tooling never scrapes the human output.
//! * `CRITERION_QUICK=1` — shrink warm-up/measurement to 50 ms/250 ms per
//!   benchmark for smoke runs where trend, not precision, matters.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim runs one setup per iteration regardless; the variants exist for
/// API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        if quick_mode() {
            return Criterion {
                sample_size: 10,
                warm_up_time: Duration::from_millis(50),
                measurement_time: Duration::from_millis(250),
            };
        }
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// `CRITERION_QUICK=1` (or any non-empty value other than `0`) selects the
/// short smoke-run configuration.
fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        run_one(&config, &format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to every benchmark closure; records elapsed time per batch of
/// `iters` iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Scale a raw ns value into a human `(value, unit)` pair.
fn humanize(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Append one JSON line to the `CRITERION_JSON` file, if configured. The
/// line format is the workspace-wide bench-record schema consumed by
/// `gb_bench::json` / `bench_diff`.
fn emit_json(name: &str, mean_ns: f64, median_ns: f64, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"mean_ns\":{mean_ns:.3},\"median_ns\":{median_ns:.3},\"iters\":{iters}}}"
    );
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    match file {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
        }
        Err(e) => eprintln!("criterion shim: cannot append to CRITERION_JSON={path}: {e}"),
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, name: &str, mut f: F) {
    // Quick mode wins even over per-bench config overrides: smoke runs
    // must stay short no matter what the bench file requests.
    let (warm_up_time, measurement_time, n_batches) = if quick_mode() {
        (
            config.warm_up_time.min(Duration::from_millis(50)),
            config.measurement_time.min(Duration::from_millis(250)),
            5usize,
        )
    } else {
        (config.warm_up_time, config.measurement_time, 9usize)
    };

    // Calibration pass: one iteration, to estimate per-iter cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_deadline = Instant::now() + warm_up_time;
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Warm up (and refine the estimate) until the warm-up budget is spent.
    while Instant::now() < warm_deadline {
        f(&mut b);
        per_iter = (per_iter + b.elapsed.max(Duration::from_nanos(1))) / 2;
    }

    // Several equal measurement batches sized to fill measurement_time
    // together, capped so a misestimate cannot hang the run. The batch
    // medians give an outlier-resistant ns/iter; the pooled mean weighs
    // every iteration equally.
    let per_batch = measurement_time.as_nanos().max(1) / n_batches as u128;
    let iters = (per_batch / per_iter.as_nanos().max(1))
        .clamp(1, 10_000_000)
        .min(config.sample_size as u128 * 100_000) as u64;
    let mut batch_ns: Vec<f64> = Vec::with_capacity(n_batches);
    let mut total_ns = 0.0f64;
    for _ in 0..n_batches {
        b.iters = iters;
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64;
        total_ns += ns;
        batch_ns.push(ns / iters as f64);
    }
    batch_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = batch_ns[batch_ns.len() / 2];
    let total_iters = iters * n_batches as u64;
    let mean_ns = total_ns / total_iters as f64;

    let (mv, mu) = humanize(mean_ns);
    let (dv, du) = humanize(median_ns);
    println!("{name:<50} time: {mv:>10.3} {mu}/iter  (median {dv:.3} {du}, {total_iters} iters)");
    emit_json(name, mean_ns, median_ns, total_iters);
}

/// Define a named group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench binaries. Cargo passes flags
/// like `--bench`; the shim runs every group unconditionally.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
