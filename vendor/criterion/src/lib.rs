//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion API its benches use: `Criterion`
//! with builder-style config, benchmark groups, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — warm up for `warm_up_time`,
//! calibrate an iteration count that fills `measurement_time`, run it, and
//! report the mean ns/iteration to stdout. There are no statistical
//! analyses, no HTML reports, and no `target/criterion` output; the shim
//! exists so `cargo bench` compiles and produces usable relative numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim runs one setup per iteration regardless; the variants exist for
/// API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        run_one(&config, &format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to every benchmark closure; records elapsed time per batch of
/// `iters` iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, name: &str, mut f: F) {
    // Calibration pass: one iteration, to estimate per-iter cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_deadline = Instant::now() + config.warm_up_time;
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Warm up (and refine the estimate) until the warm-up budget is spent.
    while Instant::now() < warm_deadline {
        f(&mut b);
        per_iter = (per_iter + b.elapsed.max(Duration::from_nanos(1))) / 2;
    }

    // One measurement batch sized to fill measurement_time, capped so a
    // misestimate cannot hang the run.
    let target = config.measurement_time.as_nanos().max(1);
    let iters = (target / per_iter.as_nanos().max(1))
        .clamp(1, 10_000_000)
        .min(config.sample_size as u128 * 100_000) as u64;
    b.iters = iters;
    f(&mut b);

    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<50} time: {value:>10.3} {unit}/iter  ({iters} iters)");
}

/// Define a named group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench binaries. Cargo passes flags
/// like `--bench`; the shim runs every group unconditionally.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
