//! `any::<T>()`: whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}
