//! The per-test case loop: generate → run → classify.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-`proptest!`-block configuration.
///
/// Only the fields this workspace touches are modelled. `PROPTEST_CASES`
/// (environment) *caps* `cases`; `PROPTEST_SEED` overrides the per-test
/// derived seed.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Successful (non-rejected) cases required for the test to pass.
    pub cases: u32,
    /// Abort after this many rejected cases across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// `cases`, capped by the `PROPTEST_CASES` environment variable.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Precondition failed (`prop_assume!`): does not count as a pass.
    Reject(String),
    /// Assertion failed: the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Drive one property test: `case` generates inputs and runs the body,
/// returning `None` when generation itself was rejected (e.g. a filter
/// exhausted its retries).
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Option<(TestCaseResult, String)>,
{
    let cases = config.effective_cases();
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut rng = TestRng::seed_from_u64(seed);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < cases {
        match case(&mut rng) {
            Some((Ok(()), _)) => passed += 1,
            None | Some((Err(TestCaseError::Reject(_)), _)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest '{name}': too many rejected cases \
                     ({rejected} rejects, {passed}/{cases} passed)"
                );
            }
            Some((Err(TestCaseError::Fail(msg)), desc)) => {
                panic!(
                    "proptest '{name}' failed at case {passed} (seed {seed}):\n\
                     {msg}\nminimal failing input was not shrunk; inputs:\n{desc}"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
