//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length interval, converted from the range forms tests use.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec size range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        use rand::Rng;
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
