//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest its property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, multiple
//!   `#[test] fn name(pat in strategy, ..) { .. }` items, and `mut` binders;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`];
//! * range strategies (`0u32..100`, `0u8..=MAX`, `0.0f64..1.0`), [`Just`],
//!   tuples, `prop::collection::vec`, [`any`], and the `prop_map` /
//!   `prop_filter` / `prop_filter_map` / `prop_flat_map` combinators.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (plus the seed of the run) instead of a minimized counterexample.
//! * **Deterministic by default.** Each test derives its RNG seed from its
//!   own name, so runs are reproducible; set `PROPTEST_SEED` to explore
//!   other streams.
//! * `PROPTEST_CASES` acts as a **cap** on per-test case counts (the real
//!   crate treats it as a default). This is what lets CI bound the runtime
//!   of `cargo test` regardless of per-test `ProptestConfig` values.
//!
//! [`Just`]: strategy::Just
//! [`any`]: arbitrary::any

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`: fail the
/// current case (without aborting the whole test process mid-panic-unwind
/// bookkeeping) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __left,
            __right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Inequality assertion with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __left
        );
    }};
}

/// Discard the current case (it does not count towards the case budget)
/// when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-defining macro. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    let mut __desc = ::std::string::String::new();
                    let __vals = ($(
                        {
                            let __v = match $crate::strategy::Strategy::gen_value(
                                &($strat),
                                __rng,
                            ) {
                                ::core::option::Option::Some(v) => v,
                                ::core::option::Option::None => {
                                    return ::core::option::Option::None
                                }
                            };
                            __desc.push_str(stringify!($argpat));
                            __desc.push_str(" = ");
                            __desc.push_str(&::std::format!("{:?}\n", __v));
                            __v
                        }
                    ),+ ,);
                    let __result: $crate::test_runner::TestCaseResult = (move || {
                        #[allow(unused_mut)]
                        let ($($argpat,)+) = __vals;
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    ::core::option::Option::Some((__result, __desc))
                });
            }
        )*
    };
}
