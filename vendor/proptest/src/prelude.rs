//! Everything a property-test module imports with one glob.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// The `prop::` namespace (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
