//! Value-generation strategies.
//!
//! A strategy produces one value per call from the test RNG; `None` means
//! "this attempt was rejected" (a filter failed repeatedly), which the
//! runner counts against the global reject budget instead of the case
//! budget. There is no value tree and no shrinking.

use crate::test_runner::TestRng;
use std::fmt::Debug;

/// How many times a filtering combinator retries generation before giving
/// up on the attempt and letting the runner reject the case.
const LOCAL_REJECT_RETRIES: usize = 256;

pub trait Strategy {
    type Value: Debug;

    fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        (**self).gen_value(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].gen_value(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: rand::SampleUniform + Clone + Debug,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        use rand::Rng;
        Some(rng.gen_range(self.clone()))
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: rand::SampleUniform + Clone + Debug,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        use rand::Rng;
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($S,)+) = self;
                Some(($($S.gen_value(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_REJECT_RETRIES {
            if let Some(v) = self.inner.gen_value(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
        for _ in 0..LOCAL_REJECT_RETRIES {
            if let Some(v) = self.inner.gen_value(rng) {
                if let Some(out) = (self.f)(v) {
                    return Some(out);
                }
            }
        }
        None
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let mid = self.inner.gen_value(rng)?;
        (self.f)(mid).gen_value(rng)
    }
}
