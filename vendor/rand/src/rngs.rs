//! The standard generator: xoshiro256** behind the `StdRng` name.

use crate::{RngCore, SeedableRng};

/// Deterministic, seedable generator (xoshiro256**).
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not a CSPRNG;
/// the workspace only needs statistical quality and reproducibility.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro's one forbidden state is all-zero; redirect it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                1,
            ];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        // Diffuse through SplitMix64, the xoshiro authors' recommended seeder.
        let mut x = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            x = splitmix64(x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&x));
            let n: i32 = rng.gen_range(4..=6);
            assert!((4..=6).contains(&n));
            let u: u64 = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }
}
