//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses:
//!
//! * [`rngs::StdRng`] — seedable, deterministic, `Clone`;
//! * the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`;
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! The generator is xoshiro256**, which is more than adequate for the
//! synthetic-data generators and property tests in this repository. It makes
//! no cryptographic claims (and neither does the workspace's use of it).
//! Replacing this shim with the real crate only changes the concrete random
//! streams, never caller code: every seed still maps deterministically to
//! one stream.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// The object-safe core every generator implements.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset:
/// integers uniform over their whole domain, floats uniform in `[0, 1)`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable from a half-open or closed interval.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Widen to i128/u128 so every integer type (including the
                // full u64 domain) shares one unbiased-enough path. The
                // modulo bias is at most span/2^64, irrelevant for the
                // synthetic-data and test workloads this shim serves.
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let off = if span.is_power_of_two() {
                    rng.next_u64() as u128 & (span - 1)
                } else {
                    rng.next_u64() as u128 % span
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo == hi), "gen_range: empty range");
                let unit: $t = StandardSample::sample(rng);
                let v = lo + (hi - lo) * unit;
                // Guard the open upper bound against rounding.
                if v >= hi && !_inclusive {
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// The user-facing extension trait, blanket-implemented for every generator.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
